//! The `odburg` command-line tool.
//!
//! ```text
//! odburg stats   <grammar>             grammar statistics and lints
//! odburg lint    <grammar>             run the grammar verifier: typed
//!                                      diagnostics (G0001...), witness trees,
//!                                      --format=text|json, --deny=warning|error
//! odburg normal  <grammar>             print the normal form
//! odburg automaton <grammar>           build the offline automaton, print sizes
//! odburg generate  <grammar>           emit a hard-coded Rust labeler (burg style)
//! odburg label   <grammar> <sexpr>     label one tree, print states and rules
//! odburg emit    <grammar> <sexpr>     select and print instructions
//! odburg compile <grammar> <file.mc>   compile a MiniC file and print assembly
//! odburg bench   <grammar>             quick cross-strategy comparison
//! odburg tables export <grammar> <out> warm an automaton, persist its tables
//!                                      (--compact-to=<n[k|m|g]> ships only the
//!                                      hot core)
//! odburg tables import <grammar> <in>  validate persisted tables, print sizes
//! odburg tables stats  <file.odbt>     per-component size breakdown of a
//!                                      persisted table file (no grammar needed)
//! odburg batch   <manifest>            run a multi-target job manifest through
//!                                      the selection service, one shot
//! odburg serve   <manifest|->          stream a manifest (or stdin) through a
//!                                      long-running SelectorServer with a
//!                                      bounded queue, deadlines, backpressure
//! odburg cluster serve <manifest|->    run a manifest through an N-shard
//!                                      ShardCluster (--shards=<n>); after the
//!                                      drain, --listen=<addr> ships every
//!                                      target's tables to one joining process
//!                                      and --join=<addr> warm-starts from a
//!                                      listener before serving
//! ```
//!
//! `<grammar>` is a built-in target name (demo, x86ish, riscish, sparcish,
//! alphaish, jvmish) or a path to a `.burg` file (dynamic costs in files are
//! declared but unbound, i.e. never applicable).
//!
//! `label`, `emit`, `compile` and `bench` accept `--labeler=<name>`
//! (ondemand, ondemand-projected, shared, offline, dp, macro); every
//! strategy is constructed and driven through the unified
//! [`Labeler`](odburg_core::Labeler) trait via
//! [`odburg::strategy::AnyLabeler`]. They also accept `--tables=<path>`
//! to warm-start an on-demand strategy from tables persisted by
//! `tables export` — a mismatched or corrupted file is rejected with an
//! error, never silently mislabeled.
//!
//! `batch` reads a manifest of `<target> <sexpr-file>` lines, submits
//! every job to a [`SelectorService`] over all built-in targets (plus
//! any `.burg` paths the manifest names), and drains the batch across
//! a worker pool — one shot, everything accepted, a single report.
//!
//! `serve` is the streaming sibling: it reads the manifest (or stdin,
//! with `-`) **incrementally** and feeds each job to a long-running
//! [`SelectorServer`](odburg::service::SelectorServer) with a
//! **bounded** queue (`--queue-cap=<n>`, default 256) and per-job
//! deadlines (`--deadline-ms=<n>`). A full queue *rejects* the job —
//! backpressure is reported, never silently dropped — and a job whose
//! deadline passes while queued completes as deadline-missed instead of
//! being labeled. `--sched=<fifo|edf>` picks the in-lane order (default
//! EDF; an *explicit* `--sched=edf` additionally sheds submissions
//! whose deadline the queue already blows, reported as `shed`), and
//! `--fair` round-robins the queue across targets so one hot target
//! cannot starve the rest. Completed jobs print as they finish, a stats
//! line appears every 16 submissions, and EOF triggers a graceful
//! shutdown (which re-exports per-target tables into `--tables-dir`, so
//! heat survives restarts). `--queue-cap`/`--deadline-ms`/`--sched`/
//! `--fair` are serve-only;
//! both subcommands take `--workers=<n>` and `--tables-dir=<dir>`, and
//! both reject the per-grammar `--tables=<path>` flag and non-`shared`
//! `--labeler` values — the service always labels through the shared
//! snapshot core.
//!
//! `lint` runs the grammar verifier
//! ([`odburg::grammar::analysis::analyze_full`]) and prints every
//! finding with its stable code (`G0001`…`G0008`) and severity, witness
//! trees as s-expressions, and — when the achievable-state exploration
//! converges — the static automaton table-size bound. `--format=json`
//! emits a machine-readable report (used by the CI `analysis-smoke`
//! job); `--deny=<severity>` picks the exit-code threshold: the default
//! `--deny=error` fails only on error-severity findings, while
//! `--deny=warning` also fails on warnings. `batch` and `serve` always
//! register manifest grammars under the `Deny` policy: a grammar with
//! error-severity findings is rejected with one stderr line per
//! diagnostic instead of failing jobs with `NoCover` at runtime.
//!
//! `cluster serve` drives the same manifest format through an in-process
//! [`ShardCluster`](odburg::cluster::ShardCluster): `--shards=<n>`
//! (default 3) shards behind consistent-hash routing with one writer
//! lease per target. After the manifest drains, the writer's tables are
//! shipped to every replica; `--listen=<addr>` then serves one joining
//! process a shipment per target over the framed TCP transport, while
//! `--join=<addr>` connects to such a listener first and installs every
//! received shipment before serving — so the joining run's warm traffic
//! labels entirely from shipped tables (the final report prints the
//! grow-path counters to prove it). Conservation is re-checked from the
//! telemetry registries alone at shutdown, and `--trace-out` renders
//! every shard as its own Chrome-trace process with shipment spans.
//!
//! Memory governance: `--memory-budget=<bytes>` (suffixes `k`, `m`, `g`
//! accepted) caps an on-demand automaton's accounted table bytes and
//! `--budget-policy=<error|flush|compact>` picks the pressure response
//! (default `compact`: evict cold states, keep the hot working set). On
//! `label`, `emit` and `compile` the flags configure the labeler's
//! [`BudgetPolicy`](odburg_core::BudgetPolicy); on `batch`/`serve` they
//! set the service's per-target budgets, enforced in the maintenance
//! quanta the workers run between jobs — never on the submit path.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use odburg::grammar::analysis;
use odburg::prelude::*;
use odburg::strategy::{self, AnyLabeler, AnyLabeling, Strategy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("odburg: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: odburg <stats|lint|normal|automaton|generate|label|emit|compile|bench|tables|batch|serve|cluster> \
     <grammar|manifest> [input] [--labeler=<name>] [--tables=<path>] \
     [--workers=<n>] [--tables-dir=<dir>] [--memory-budget=<bytes>] \
     [--budget-policy=<error|flush|compact>] [--queue-cap=<n>] [--deadline-ms=<n>] \
     [--sched=<fifo|edf>] [--fair] [--metrics-out=<path>] [--trace-out=<path>] \
     [--compact-to=<bytes>] [--format=<text|json>] [--deny=<warning|error>] \
     [--shards=<n>] [--listen=<addr>] [--join=<addr>]";

/// The `--format` flag values (lint only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum FormatFlag {
    #[default]
    Text,
    Json,
}

fn parse_format(value: &str) -> Result<FormatFlag, String> {
    match value {
        "text" => Ok(FormatFlag::Text),
        "json" => Ok(FormatFlag::Json),
        other => Err(format!(
            "unknown format `{other}` (expected one of: text, json)"
        )),
    }
}

fn parse_deny(value: &str) -> Result<Severity, String> {
    match value {
        "warning" => Ok(Severity::Warning),
        "error" => Ok(Severity::Error),
        other => Err(format!(
            "unknown deny level `{other}` (expected one of: warning, error)"
        )),
    }
}

/// The `--budget-policy` flag values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyFlag {
    Error,
    Flush,
    Compact,
}

/// Parses `--sched`. `edf` also opts the server into feasibility
/// shedding at admission; `fifo` is the pre-scheduler baseline.
fn parse_sched(value: &str) -> Result<SchedPolicy, String> {
    match value {
        "fifo" => Ok(SchedPolicy::Fifo),
        "edf" => Ok(SchedPolicy::Edf),
        other => Err(format!(
            "unknown scheduling policy `{other}` (expected one of: fifo, edf)"
        )),
    }
}

fn parse_policy(value: &str) -> Result<PolicyFlag, String> {
    match value {
        "error" => Ok(PolicyFlag::Error),
        "flush" => Ok(PolicyFlag::Flush),
        "compact" => Ok(PolicyFlag::Compact),
        other => Err(format!(
            "unknown budget policy `{other}` (expected one of: error, flush, compact)"
        )),
    }
}

/// Parses a byte size with an optional `k`/`m`/`g` suffix (KiB-style
/// powers of two).
fn parse_bytes(flag: &str, value: &str) -> Result<usize, String> {
    let bad = || format!("{flag} needs a positive byte count (e.g. 512k, 4m), got `{value}`");
    let lower = value.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match lower.as_bytes()[lower.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            },
        ),
        None => (lower.as_str(), 0),
    };
    match digits.parse::<usize>() {
        // checked_mul (not checked_shl: that discards shifted-out high
        // bits) so absurd sizes error instead of wrapping to tiny ones.
        Ok(n) if n >= 1 => n.checked_mul(1usize << shift).ok_or_else(bad),
        _ => Err(bad()),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Split off the flags; everything else is positional.
    let mut strategy = Strategy::OnDemand;
    let mut labeler_given = false;
    let mut tables: Option<String> = None;
    let mut tables_dir: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut memory_budget: Option<usize> = None;
    let mut budget_policy: Option<PolicyFlag> = None;
    let mut queue_cap: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut sched: Option<SchedPolicy> = None;
    let mut fair = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut compact_to: Option<usize> = None;
    let mut format: Option<FormatFlag> = None;
    let mut deny: Option<Severity> = None;
    let mut shards: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut join: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    let parse_count = |flag: &str, value: &str| -> Result<usize, String> {
        match value.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{flag} needs a positive integer, got `{value}`")),
        }
    };
    let parse_workers = |value: &str| parse_count("--workers", value);
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--labeler=") {
            strategy = name.parse().map_err(|e| format!("{e}"))?;
            labeler_given = true;
        } else if arg == "--labeler" {
            let name = iter.next().ok_or("--labeler needs a value")?;
            strategy = name.parse().map_err(|e| format!("{e}"))?;
            labeler_given = true;
        } else if let Some(path) = arg.strip_prefix("--tables=") {
            tables = Some(path.to_owned());
        } else if arg == "--tables" {
            let path = iter.next().ok_or("--tables needs a path")?;
            tables = Some(path.clone());
        } else if let Some(path) = arg.strip_prefix("--tables-dir=") {
            tables_dir = Some(path.to_owned());
        } else if arg == "--tables-dir" {
            let path = iter.next().ok_or("--tables-dir needs a directory")?;
            tables_dir = Some(path.clone());
        } else if let Some(value) = arg.strip_prefix("--workers=") {
            workers = Some(parse_workers(value)?);
        } else if arg == "--workers" {
            let value = iter.next().ok_or("--workers needs a count")?;
            workers = Some(parse_workers(value)?);
        } else if let Some(value) = arg.strip_prefix("--memory-budget=") {
            memory_budget = Some(parse_bytes("--memory-budget", value)?);
        } else if arg == "--memory-budget" {
            let value = iter.next().ok_or("--memory-budget needs a byte count")?;
            memory_budget = Some(parse_bytes("--memory-budget", value)?);
        } else if let Some(value) = arg.strip_prefix("--queue-cap=") {
            queue_cap = Some(parse_count("--queue-cap", value)?);
        } else if arg == "--queue-cap" {
            let value = iter.next().ok_or("--queue-cap needs a job count")?;
            queue_cap = Some(parse_count("--queue-cap", value)?);
        } else if let Some(value) = arg.strip_prefix("--deadline-ms=") {
            deadline_ms = Some(parse_count("--deadline-ms", value)? as u64);
        } else if arg == "--deadline-ms" {
            let value = iter
                .next()
                .ok_or("--deadline-ms needs a millisecond count")?;
            deadline_ms = Some(parse_count("--deadline-ms", value)? as u64);
        } else if let Some(value) = arg.strip_prefix("--sched=") {
            sched = Some(parse_sched(value)?);
        } else if arg == "--sched" {
            let value = iter.next().ok_or("--sched needs a policy")?;
            sched = Some(parse_sched(value)?);
        } else if arg == "--fair" {
            fair = true;
        } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
            metrics_out = Some(path.to_owned());
        } else if arg == "--metrics-out" {
            let path = iter.next().ok_or("--metrics-out needs a path")?;
            metrics_out = Some(path.clone());
        } else if let Some(path) = arg.strip_prefix("--trace-out=") {
            trace_out = Some(path.to_owned());
        } else if arg == "--trace-out" {
            let path = iter.next().ok_or("--trace-out needs a path")?;
            trace_out = Some(path.clone());
        } else if let Some(value) = arg.strip_prefix("--compact-to=") {
            compact_to = Some(parse_bytes("--compact-to", value)?);
        } else if arg == "--compact-to" {
            let value = iter.next().ok_or("--compact-to needs a byte count")?;
            compact_to = Some(parse_bytes("--compact-to", value)?);
        } else if let Some(value) = arg.strip_prefix("--budget-policy=") {
            budget_policy = Some(parse_policy(value)?);
        } else if arg == "--budget-policy" {
            let value = iter.next().ok_or("--budget-policy needs a value")?;
            budget_policy = Some(parse_policy(value)?);
        } else if let Some(value) = arg.strip_prefix("--format=") {
            format = Some(parse_format(value)?);
        } else if arg == "--format" {
            let value = iter.next().ok_or("--format needs a value")?;
            format = Some(parse_format(value)?);
        } else if let Some(value) = arg.strip_prefix("--deny=") {
            deny = Some(parse_deny(value)?);
        } else if arg == "--deny" {
            let value = iter.next().ok_or("--deny needs a severity")?;
            deny = Some(parse_deny(value)?);
        } else if let Some(value) = arg.strip_prefix("--shards=") {
            shards = Some(parse_count("--shards", value)?);
        } else if arg == "--shards" {
            let value = iter.next().ok_or("--shards needs a shard count")?;
            shards = Some(parse_count("--shards", value)?);
        } else if let Some(addr) = arg.strip_prefix("--listen=") {
            listen = Some(addr.to_owned());
        } else if arg == "--listen" {
            let addr = iter.next().ok_or("--listen needs an address")?;
            listen = Some(addr.clone());
        } else if let Some(addr) = arg.strip_prefix("--join=") {
            join = Some(addr.to_owned());
        } else if arg == "--join" {
            let addr = iter.next().ok_or("--join needs an address")?;
            join = Some(addr.clone());
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`\n{USAGE}"));
        } else {
            positional.push(arg);
        }
    }
    let tables = tables.as_deref();

    let command = positional.first().ok_or(USAGE)?;
    if (format.is_some() || deny.is_some()) && command.as_str() != "lint" {
        return Err("--format/--deny only apply to the lint subcommand".into());
    }
    if (shards.is_some() || listen.is_some() || join.is_some()) && command.as_str() != "cluster" {
        return Err("--shards/--listen/--join only apply to the cluster subcommand".into());
    }
    if compact_to.is_some()
        && !(command.as_str() == "tables"
            && positional.get(1).map(|a| a.as_str()) == Some("export"))
    {
        return Err(
            "--compact-to only applies to `tables export` (it bounds the \
             exported file's hot core)"
                .into(),
        );
    }
    if matches!(command.as_str(), "batch" | "serve" | "cluster") {
        if tables.is_some() {
            return Err(format!(
                "{command} warm-starts from --tables-dir=<dir> (one <target>.odbt per target), \
                 not from a single --tables file"
            ));
        }
        if labeler_given && !strategy.serves_concurrently() {
            return Err(format!(
                "the {command} service always labels through the shared snapshot core; \
                 drop `--labeler={strategy}` or pass --labeler=shared"
            ));
        }
        let budget = match (memory_budget, budget_policy) {
            (None, None) => None,
            (None, Some(_)) => {
                return Err("--budget-policy needs --memory-budget=<bytes>".into());
            }
            (Some(bytes), None | Some(PolicyFlag::Compact)) => {
                Some(MemoryBudget::compact(bytes, 0.5))
            }
            (Some(bytes), Some(PolicyFlag::Flush)) => Some(MemoryBudget::flush(bytes)),
            (Some(_), Some(PolicyFlag::Error)) => {
                return Err(format!(
                    "{command} budgets support --budget-policy=compact or flush \
                     (`error` would fail jobs instead of bounding memory)"
                ));
            }
        };
        if command.as_str() == "batch" {
            if queue_cap.is_some() {
                return Err("--queue-cap only applies to `serve` (batch accepts every \
                     job and drains once; there is no queue to bound)"
                    .into());
            }
            if deadline_ms.is_some() {
                return Err("--deadline-ms only applies to `serve` (batch jobs have no \
                     deadline; they run to completion)"
                    .into());
            }
            if sched.is_some() || fair {
                return Err("--sched/--fair only apply to `serve` (batch drains every \
                     job; there is no queue to schedule)"
                    .into());
            }
            if metrics_out.is_some() || trace_out.is_some() {
                return Err("--metrics-out/--trace-out only apply to `serve` (batch \
                     prints its report inline)"
                    .into());
            }
            let manifest = positional
                .get(1)
                .ok_or("batch needs a manifest file of `<target> <sexpr-file>` lines")?;
            return batch(manifest, workers, tables_dir.as_deref(), budget);
        }
        if command.as_str() == "cluster" {
            let action = positional
                .get(1)
                .ok_or("cluster needs an action: `cluster serve <manifest|->`")?;
            if action.as_str() != "serve" {
                return Err(format!(
                    "unknown cluster action `{action}` (expected `serve`)"
                ));
            }
            if listen.is_some() && join.is_some() {
                return Err(
                    "--listen and --join are mutually exclusive (a process either serves \
                     shipments to a joiner or joins a listener, not both)"
                        .into(),
                );
            }
            let manifest = positional.get(2).ok_or(
                "cluster serve needs a manifest of `<target> <sexpr-file>` lines (or `-` for stdin)",
            )?;
            return cluster_serve(
                manifest,
                shards.unwrap_or(3),
                workers,
                tables_dir.as_deref(),
                budget,
                queue_cap,
                deadline_ms,
                sched,
                fair,
                listen.as_deref(),
                join.as_deref(),
                metrics_out.as_deref(),
                trace_out.as_deref(),
            );
        }
        let manifest = positional
            .get(1)
            .ok_or("serve needs a manifest of `<target> <sexpr-file>` lines (or `-` for stdin)")?;
        return serve(
            manifest,
            workers,
            tables_dir.as_deref(),
            budget,
            queue_cap,
            deadline_ms,
            sched,
            fair,
            metrics_out.as_deref(),
            trace_out.as_deref(),
        );
    }
    if let Some(dir) = &tables_dir {
        return Err(format!(
            "--tables-dir={dir} only applies to the batch/serve subcommand \
             (use --tables=<path> here)"
        ));
    }
    if workers.is_some() {
        return Err("--workers only applies to the batch/serve subcommand".into());
    }
    if queue_cap.is_some() || deadline_ms.is_some() {
        return Err("--queue-cap/--deadline-ms only apply to the serve subcommand".into());
    }
    if sched.is_some() || fair {
        return Err("--sched/--fair only apply to the serve subcommand".into());
    }
    if metrics_out.is_some() || trace_out.is_some() {
        return Err("--metrics-out/--trace-out only apply to the serve subcommand".into());
    }
    if !matches!(command.as_str(), "label" | "emit" | "compile")
        && (memory_budget.is_some() || budget_policy.is_some())
    {
        return Err(
            "--memory-budget/--budget-policy apply to label, emit, compile and batch".into(),
        );
    }
    if command.as_str() == "tables" {
        if tables.is_some() {
            return Err(
                "the tables subcommand takes its path positionally, not via --tables".into(),
            );
        }
        return tables_command(&positional, strategy, compact_to);
    }
    let governed = governed_config(strategy, memory_budget, budget_policy)?;
    if governed.is_some() && tables.is_some() {
        return Err(
            "--memory-budget/--budget-policy cannot combine with --tables: persisted \
             tables carry their own configuration (re-export them under the governed \
             one first)"
                .into(),
        );
    }
    let grammar_name = positional.get(1).ok_or(USAGE)?;
    let grammar = load_grammar(grammar_name)?;

    match command.as_str() {
        "stats" => stats(&grammar),
        "lint" => lint_cmd(
            &grammar,
            format.unwrap_or_default(),
            deny.unwrap_or(Severity::Error),
        ),
        "normal" => normal(&grammar),
        "automaton" => automaton(&grammar),
        "generate" => generate(&grammar),
        "label" => label(
            &grammar,
            strategy,
            tables,
            governed,
            positional.get(2).ok_or("label needs an s-expression")?,
        ),
        "emit" => emit(
            &grammar,
            strategy,
            tables,
            governed,
            positional.get(2).ok_or("emit needs an s-expression")?,
        ),
        "compile" => compile(
            &grammar,
            strategy,
            tables,
            governed,
            positional.get(2).ok_or("compile needs a MiniC file")?,
        ),
        "bench" => bench(&grammar, strategy, tables),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Resolves the governance flags into an explicit automaton
/// configuration, or `None` when the defaults apply.
fn governed_config(
    strategy: Strategy,
    memory_budget: Option<usize>,
    budget_policy: Option<PolicyFlag>,
) -> Result<Option<OnDemandConfig>, String> {
    let policy = match (memory_budget, budget_policy) {
        (None, None) => return Ok(None),
        (None, Some(PolicyFlag::Error)) => BudgetPolicy::Error,
        (None, Some(PolicyFlag::Flush)) => BudgetPolicy::Flush,
        (None, Some(PolicyFlag::Compact)) => {
            return Err("--budget-policy=compact needs --memory-budget=<bytes>".into());
        }
        (Some(byte_budget), None | Some(PolicyFlag::Compact)) => BudgetPolicy::Compact {
            byte_budget,
            retain_fraction: 0.5,
        },
        (Some(_), Some(PolicyFlag::Flush)) => {
            return Err("byte-triggered flushing is a service action: use \
                 `odburg batch --memory-budget=<bytes> --budget-policy=flush`; the \
                 labeler-level flush policy triggers on the state budget (drop \
                 --memory-budget)"
                .into());
        }
        (Some(_), Some(PolicyFlag::Error)) => {
            return Err(
                "--budget-policy=error takes no --memory-budget (the state budget \
                 governs the error policy)"
                    .into(),
            );
        }
    };
    let base = strategy
        .ondemand_config()
        .ok_or_else(|| format!("{}", strategy::ConfigUnsupported { strategy }))?;
    Ok(Some(OnDemandConfig {
        budget_policy: policy,
        ..base
    }))
}

fn load_grammar(name: &str) -> Result<Grammar, String> {
    if let Some(g) = odburg::targets::by_name(name) {
        return Ok(g);
    }
    let text =
        std::fs::read_to_string(name).map_err(|e| format!("cannot read grammar `{name}`: {e}"))?;
    parse_grammar(&text).map_err(|e| format!("{name}: {e}"))
}

fn build_labeler(
    grammar: &Grammar,
    strategy: Strategy,
    tables: Option<&str>,
    governed: Option<OnDemandConfig>,
) -> Result<AnyLabeler, String> {
    if let Some(mode) = governed {
        // Governance flags resolved to an explicit configuration (they
        // exclude --tables; `run` already rejected the combination).
        return AnyLabeler::build_with_mode(strategy, Arc::new(grammar.normalize()), mode)
            .map_err(|e| format!("{e}"));
    }
    let Some(path) = tables else {
        return AnyLabeler::build(strategy, grammar)
            .map_err(|e| format!("cannot build `{strategy}` labeler: {e}"));
    };
    // One-stop warm start: config resolution, table validation and
    // construction share a single error path, so a mismatched file is
    // always a loud error here, never a silent cold start.
    AnyLabeler::build_warm_from_tables(strategy, Arc::new(grammar.normalize()), Path::new(path))
        .map_err(|e| match e {
            strategy::WarmStartError::Unsupported(e) => format!("--tables: {e}"),
            strategy::WarmStartError::Persist(e) => format!("cannot load tables `{path}`: {e}"),
        })
}

/// Imports persisted tables for `strategy`, validating grammar
/// fingerprint and configuration.
fn load_tables_for(
    grammar: &Grammar,
    strategy: Strategy,
    path: &str,
) -> Result<AutomatonSnapshot, String> {
    let config = strategy
        .ondemand_config()
        .ok_or_else(|| format!("--tables: {}", strategy::WarmStartUnsupported { strategy }))?;
    odburg::select::persist::load_tables(Path::new(path), Arc::new(grammar.normalize()), config)
        .map_err(|e| format!("cannot load tables `{path}`: {e}"))
}

/// `odburg tables export <grammar> <out>` / `odburg tables import
/// <grammar> <in>` / `odburg tables stats <file>`.
fn tables_command(
    positional: &[&String],
    strategy: Strategy,
    compact_to: Option<usize>,
) -> Result<(), String> {
    const TABLES_USAGE: &str = "usage: odburg tables <export|import> <grammar> <path> \
                                [--labeler=<name>] [--compact-to=<bytes>] | \
                                odburg tables stats <file.odbt>";
    let action = positional.get(1).ok_or(TABLES_USAGE)?;
    if action.as_str() == "stats" {
        let path = positional.get(2).ok_or(TABLES_USAGE)?;
        return tables_stats(path);
    }
    let grammar = load_grammar(positional.get(2).ok_or(TABLES_USAGE)?)?;
    let path = positional.get(3).ok_or(TABLES_USAGE)?;
    let config = strategy
        .ondemand_config()
        .ok_or_else(|| format!("{}", strategy::WarmStartUnsupported { strategy }))?;

    match action.as_str() {
        "export" => {
            let normal = Arc::new(grammar.normalize());
            let mut auto = OnDemandAutomaton::with_config(Arc::clone(&normal), config);
            // Warm on the MiniC suite when the grammar covers it,
            // otherwise on trees sampled from the grammar itself.
            let suite = odburg::workloads::combined_workload();
            let workload = if auto.label_forest(&suite.forest).is_ok() {
                suite
            } else {
                odburg::workloads::random_workload(&normal, 0xD0, 256)
            };
            auto.label_forest(&workload.forest)
                .map_err(|e| format!("cannot warm the automaton on `{}`: {e}", workload.name))?;
            // Governed persistence: ship only the hot core. The same
            // heat-guided compaction pass the memory governor runs
            // rebuilds the tables down to the requested byte target
            // before they are written.
            if let Some(target_bytes) = compact_to {
                let stats = auto.compact(target_bytes, &[]);
                println!(
                    "compacted to {} bytes (target {target_bytes}): kept {} states, \
                     evicted {} states and {} transitions",
                    stats.bytes_after,
                    stats.retained_states,
                    stats.evicted_states,
                    stats.evicted_transitions,
                );
            }
            let snapshot = auto.snapshot();
            odburg::select::persist::save_tables(&snapshot, Path::new(path))
                .map_err(|e| format!("cannot write tables `{path}`: {e}"))?;
            let s = snapshot.stats();
            println!(
                "exported {}: {} states, {} transitions, {} signatures (warmed on {}, {} nodes)",
                path,
                s.states,
                s.transitions,
                s.signatures,
                workload.name,
                workload.forest.len(),
            );
            Ok(())
        }
        "import" => {
            let snapshot = load_tables_for(&grammar, strategy, path)?;
            let s = snapshot.stats();
            println!(
                "imported {}: epoch {}, {} states, {} transitions, {} signatures",
                path, s.epoch, s.states, s.transitions, s.signatures,
            );
            Ok(())
        }
        other => Err(format!("unknown tables action `{other}`\n{TABLES_USAGE}")),
    }
}

/// `odburg tables stats <file>`: a per-component breakdown of a
/// persisted table file via the persist layer — no grammar needed, but
/// the header, checksum and structure are fully verified.
fn tables_stats(path: &str) -> Result<(), String> {
    let info = odburg::select::persist::inspect_tables(Path::new(path))
        .map_err(|e| format!("cannot inspect tables `{path}`: {e}"))?;
    let policy = match info.config.budget_policy {
        BudgetPolicy::Error => "error".to_owned(),
        BudgetPolicy::Flush => "flush".to_owned(),
        BudgetPolicy::Compact {
            byte_budget,
            retain_fraction,
        } => format!("compact ({byte_budget} bytes, retain {retain_fraction})"),
    };
    println!("tables:              {path}");
    println!("grammar fingerprint: {:#018x}", info.fingerprint);
    println!(
        "config:              {}, state budget {}, policy {policy}",
        if info.config.project_children {
            "projected"
        } else {
            "direct"
        },
        info.config.state_budget,
    );
    println!("epoch:               {}", info.epoch);
    println!("nonterminals:        {}", info.num_nts);
    println!(
        "states:              {:>8}  ({} bytes)",
        info.states, info.bytes.states
    );
    println!(
        "projections:         {:>8}  ({} bytes)",
        info.projections, info.bytes.projections
    );
    println!(
        "transitions:         {:>8}  ({} bytes)",
        info.transitions, info.bytes.transitions
    );
    println!(
        "projection cache:    {:>8}  ({} bytes)",
        info.cached_projections, info.bytes.projection_cache
    );
    println!(
        "signatures:          {:>8}  ({} bytes)",
        info.signatures, info.bytes.signatures
    );
    println!(
        "dense index:         derived   ({} bytes, rebuilt at import)",
        info.bytes.dense_index
    );
    println!(
        "accounted bytes:     {:>8}  (file payload {} bytes)",
        info.bytes.total(),
        info.payload_bytes
    );
    Ok(())
}

/// `odburg batch <manifest>`: run a multi-target job manifest through
/// the selection service. Each manifest line is `<target> <sexpr-file>`
/// (blank lines and `#` comments are skipped); the file's s-expressions
/// (one per line, `#` comments allowed) form one forest = one job.
/// Formats a manifest registration failure. When the grammar was rejected
/// by the static verifier, first prints one stderr line per diagnostic so
/// the offending findings are visible, not just the count.
fn registration_error(manifest: &str, lineno: usize, e: ServiceError) -> String {
    if let ServiceError::Analysis {
        target,
        diagnostics,
    } = &e
    {
        for d in diagnostics {
            eprintln!("odburg: {manifest}:{lineno}: target `{target}`: {d}");
        }
    }
    format!("{manifest}:{lineno}: {e}")
}

fn batch(
    manifest: &str,
    workers: Option<usize>,
    tables_dir: Option<&str>,
    memory_budget: Option<MemoryBudget>,
) -> Result<(), String> {
    use odburg::service::{SelectorService, ServiceConfig, Ticket};

    let text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read manifest `{manifest}`: {e}"))?;
    let svc = SelectorService::with_builtin_targets(ServiceConfig {
        workers: workers.unwrap_or(0),
        tables_dir: tables_dir.map(Into::into),
        memory_budget,
        analysis_policy: AnalysisPolicy::Deny,
    });

    let mut jobs: Vec<(Ticket, String, String)> = Vec::new(); // ticket, target, file
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (target, file) = line
            .split_once(char::is_whitespace)
            .map(|(t, f)| (t, f.trim()))
            .filter(|(t, f)| !t.is_empty() && !f.is_empty())
            .ok_or_else(|| {
                format!("{manifest}:{lineno}: expected `<target> <sexpr-file>`, got `{line}`")
            })?;

        // Targets beyond the built-ins register on first sight — this is
        // the runtime-registration path, driven from a manifest.
        if svc.grammar(target).is_err() {
            let grammar = load_grammar(target).map_err(|e| format!("{manifest}:{lineno}: {e}"))?;
            svc.register_normal(target, Arc::new(grammar.normalize()))
                .map_err(|e| registration_error(manifest, lineno, e))?;
        }

        let trees = std::fs::read_to_string(file)
            .map_err(|e| format!("{manifest}:{lineno}: cannot read `{file}`: {e}"))?;
        let mut forest = Forest::new();
        for tree in trees.lines() {
            let tree = tree.trim();
            if tree.is_empty() || tree.starts_with('#') {
                continue;
            }
            let root = parse_sexpr(&mut forest, tree)
                .map_err(|e| format!("{manifest}:{lineno}: {file}: bad tree: {e}"))?;
            forest.add_root(root);
        }
        if forest.is_empty() {
            return Err(format!("{manifest}:{lineno}: {file}: no trees"));
        }
        let ticket = svc
            .submit(target, forest)
            .map_err(|e| format!("{manifest}:{lineno}: {e}"))?;
        jobs.push((ticket, target.to_owned(), file.to_owned()));
    }
    if jobs.is_empty() {
        return Err(format!("manifest `{manifest}` contains no jobs"));
    }

    let report = svc.drain();
    let mut first_failure: Option<String> = None;
    for (result, (ticket, target, file)) in report.results.iter().zip(&jobs) {
        debug_assert_eq!(result.ticket, *ticket);
        match result.reduce() {
            Ok(red) => println!(
                "{} {target} {file}: {} nodes, {} instructions, cost {}",
                result.ticket,
                result.forest.len(),
                red.len(),
                red.total_cost
            ),
            Err(e) => {
                println!("{} {target} {file}: FAILED: {e}", result.ticket);
                first_failure.get_or_insert_with(|| {
                    format!("job {} ({target}, {file}): {e}", result.ticket)
                });
            }
        }
    }
    for t in &report.per_target {
        println!(
            "target {}: {} jobs, {} nodes, {} misses, {} states built, epochs {}, {}, \
             {} table bytes{}",
            t.target,
            t.jobs,
            t.nodes,
            t.counters.memo_misses,
            t.counters.states_built,
            match t.epochs {
                Some((lo, hi)) => format!("{lo}..{hi}"),
                None => "-".to_owned(),
            },
            if t.warm_started { "warm" } else { "cold" },
            t.table_bytes,
            match t.pressure {
                Some(event) => format!(
                    ", {} {} -> {} bytes ({} compactions, {} flushes, {} states evicted)",
                    match event.action {
                        PressureAction::Flush => "flushed",
                        PressureAction::Compact { .. } => "compacted",
                    },
                    event.bytes_before,
                    event.bytes_after,
                    t.counters.compactions,
                    t.counters.flushes,
                    t.counters.states_evicted,
                ),
                None => String::new(),
            },
        );
    }
    println!(
        "batch: {} jobs across {} workers in {:?} (p50 {:?}, p99 {:?})",
        report.results.len(),
        report.workers,
        report.wall,
        report.latency.p50,
        report.latency.p99,
    );
    match first_failure {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}

/// `odburg serve <manifest|->`: stream jobs through a long-running
/// [`SelectorServer`](odburg::service::SelectorServer). Manifest lines
/// are read incrementally (`-` reads stdin), each job is submitted
/// with the configured deadline against the bounded queue, completions
/// print as they finish, and EOF triggers a graceful shutdown whose
/// report (including the table re-exports into `--tables-dir`) closes
/// the run. A full queue rejects the job, and under `--sched=edf` a
/// deadline the queue already blows is shed at admission — both
/// counted and printed, never silently lost. `--fair` adds per-target
/// deficit-round-robin so one hot target cannot starve the rest.
///
/// Observability: the periodic stats line and the post-shutdown
/// conservation check are sourced from the server's telemetry registry
/// (not the hand-rolled loop counters), `--metrics-out=<path>` dumps
/// the registry and flight recorder as JSONL, and `--trace-out=<path>`
/// writes a Chrome trace-event file (`chrome://tracing`).
#[allow(clippy::too_many_arguments)]
fn serve(
    manifest: &str,
    workers: Option<usize>,
    tables_dir: Option<&str>,
    memory_budget: Option<MemoryBudget>,
    queue_cap: Option<usize>,
    deadline_ms: Option<u64>,
    sched: Option<SchedPolicy>,
    fair: bool,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    use std::fmt::Write as _;
    use std::io::BufRead;
    use std::time::{Duration, Instant};

    use odburg::select::telemetry::{write_chrome_trace, write_jsonl, Telemetry};
    use odburg::service::{
        JobHandle, JobOptions, SelectorServer, ServeError, ServerConfig, SubmitError,
    };

    let server = SelectorServer::with_builtin_targets(ServerConfig {
        workers: workers.unwrap_or(0),
        queue_cap: queue_cap.unwrap_or(0),
        sched: sched.unwrap_or_default(),
        // An explicit --sched=edf opts into admission shedding too; the
        // default (EDF ordering, no shedding) keeps the submit contract
        // of earlier releases.
        shed_infeasible: sched == Some(SchedPolicy::Edf),
        fair: fair.then(FairConfig::default),
        tables_dir: tables_dir.map(Into::into),
        memory_budget,
        analysis_policy: AnalysisPolicy::Deny,
    });
    let options = JobOptions {
        deadline: deadline_ms.map(Duration::from_millis),
        ..JobOptions::default()
    };

    let stdin = std::io::stdin();
    let reader: Box<dyn BufRead> = if manifest == "-" {
        Box::new(stdin.lock())
    } else {
        let file = std::fs::File::open(manifest)
            .map_err(|e| format!("cannot read manifest `{manifest}`: {e}"))?;
        Box::new(std::io::BufReader::new(file))
    };

    let mut handles: Vec<(JobHandle, String)> = Vec::new(); // handle, file
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut missed = 0u64;

    /// Prints one finished job and tallies its outcome. Reduction runs
    /// on this thread, so its latency histogram is fed here rather than
    /// in the worker pop path.
    fn print_outcome(
        done: &odburg::service::CompletedJob,
        file: &str,
        telemetry: &Telemetry,
        completed: &mut u64,
        failed: &mut u64,
        missed: &mut u64,
    ) {
        let reduce_start = Instant::now();
        let reduced = done.reduce();
        telemetry
            .target(&done.target)
            .reduce
            .record_duration(reduce_start.elapsed());
        match reduced {
            Ok(red) => {
                *completed += 1;
                println!(
                    "{} {} {file}: {} nodes, {} instructions, cost {}",
                    done.ticket,
                    done.target,
                    done.forest.len(),
                    red.len(),
                    red.total_cost
                );
            }
            Err(ServeError::Job(odburg::service::JobError::DeadlineExceeded { missed_by })) => {
                *missed += 1;
                println!(
                    "{} {} {file}: DEADLINE MISSED by {missed_by:?}",
                    done.ticket, done.target
                );
            }
            Err(e) => {
                *completed += 1;
                *failed += 1;
                println!("{} {} {file}: FAILED: {e}", done.ticket, done.target);
            }
        }
    }

    /// Reaps finished handles: prints each completed job, keeps the
    /// rest. With `block`, waits every remaining handle out.
    #[allow(clippy::too_many_arguments)]
    fn reap(
        handles: &mut Vec<(JobHandle, String)>,
        block: bool,
        telemetry: &Telemetry,
        completed: &mut u64,
        failed: &mut u64,
        missed: &mut u64,
    ) {
        let mut i = 0;
        while i < handles.len() {
            if block {
                let (handle, file) = handles.remove(i);
                let done = handle.wait();
                print_outcome(&done, &file, telemetry, completed, failed, missed);
            } else if let Some(done) = handles[i].0.try_wait() {
                let (_, file) = handles.remove(i);
                print_outcome(&done, &file, telemetry, completed, failed, missed);
            } else {
                i += 1;
            }
        }
    }

    for (idx, raw) in reader.lines().enumerate() {
        let raw = raw.map_err(|e| format!("cannot read manifest `{manifest}`: {e}"))?;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (target, file) = line
            .split_once(char::is_whitespace)
            .map(|(t, f)| (t, f.trim()))
            .filter(|(t, f)| !t.is_empty() && !f.is_empty())
            .ok_or_else(|| {
                format!("{manifest}:{lineno}: expected `<target> <sexpr-file>`, got `{line}`")
            })?;

        // Targets beyond the built-ins register on first sight, exactly
        // as in `batch`.
        if server.grammar(target).is_err() {
            let grammar = load_grammar(target).map_err(|e| format!("{manifest}:{lineno}: {e}"))?;
            server
                .register_normal(target, Arc::new(grammar.normalize()))
                .map_err(|e| registration_error(manifest, lineno, e))?;
        }

        let trees = std::fs::read_to_string(file)
            .map_err(|e| format!("{manifest}:{lineno}: cannot read `{file}`: {e}"))?;
        let mut forest = Forest::new();
        for tree in trees.lines() {
            let tree = tree.trim();
            if tree.is_empty() || tree.starts_with('#') {
                continue;
            }
            let root = parse_sexpr(&mut forest, tree)
                .map_err(|e| format!("{manifest}:{lineno}: {file}: bad tree: {e}"))?;
            forest.add_root(root);
        }
        if forest.is_empty() {
            return Err(format!("{manifest}:{lineno}: {file}: no trees"));
        }

        submitted += 1;
        match server.try_submit_with(target, forest, options) {
            Ok(handle) => handles.push((handle, file.to_owned())),
            Err(SubmitError::QueueFull { capacity }) => {
                rejected += 1;
                println!("-- {target} {file}: rejected (queue full at {capacity})");
            }
            Err(SubmitError::Infeasible {
                estimated_wait,
                deadline,
            }) => {
                shed += 1;
                println!(
                    "-- {target} {file}: shed (estimated wait {estimated_wait:?} \
                     exceeds the {deadline:?} deadline)"
                );
            }
            Err(e) => return Err(format!("{manifest}:{lineno}: {e}")),
        }

        reap(
            &mut handles,
            false,
            server.telemetry(),
            &mut completed,
            &mut failed,
            &mut missed,
        );
        if submitted.is_multiple_of(16) {
            // Sourced from the telemetry registry (queue depth is a
            // gauge the registry does not track, so it still comes from
            // the server); each target's shedding EWMA rides along.
            let totals = server.telemetry().totals();
            let mut line = format!(
                "serve: submitted={} completed={} failed={} rejected={} shed={} \
                 deadline-missed={} queue-depth={}",
                totals.submitted,
                totals.completed,
                totals.failed,
                totals.rejected,
                totals.shed,
                totals.deadline_missed,
                server.tallies().queue_depth,
            );
            for (target, estimate, samples) in server.service_estimates() {
                let _ = write!(line, " {target}.ewma={estimate:?}/{samples}");
            }
            println!("{line}");
        }
    }
    if submitted == 0 {
        return Err(format!("manifest `{manifest}` contains no jobs"));
    }

    // EOF: finish every accepted job, then shut down gracefully.
    reap(
        &mut handles,
        true,
        server.telemetry(),
        &mut completed,
        &mut failed,
        &mut missed,
    );
    let telemetry = Arc::clone(server.telemetry());
    let report = server.shutdown();
    for t in &report.per_target {
        println!(
            "target {}: {} misses, {} states built, {}, {} table bytes \
             ({} dense index), {} maintenance quanta, {} deadline misses, \
             {} rejected, {} shed{}{}",
            t.target,
            t.counters.memo_misses,
            t.counters.states_built,
            if t.warm_started { "warm" } else { "cold" },
            t.table_bytes,
            t.dense_index_bytes,
            t.counters.maintenance_runs,
            t.counters.deadline_misses,
            t.counters.rejected_submits,
            t.counters.shed_submits,
            match t.service_ewma {
                Some(estimate) => format!(", ewma {estimate:?} over {} samples", t.service_samples),
                None => String::new(),
            },
            match t.pressure {
                Some(event) => format!(
                    ", {} {} -> {} bytes",
                    match event.action {
                        PressureAction::Flush => "flushed",
                        PressureAction::Compact { .. } => "compacted",
                    },
                    event.bytes_before,
                    event.bytes_after,
                ),
                None => String::new(),
            },
        );
    }
    for name in &report.exported_tables {
        println!("exported tables: {name}");
    }
    for (name, error) in &report.export_errors {
        eprintln!("odburg: cannot export tables for `{name}`: {error}");
    }
    println!(
        "serve: submitted {submitted}, completed {completed}, failed {failed}, \
         rejected {rejected}, shed {shed}, deadline-missed {missed}, across {} workers \
         (queue cap {}) in {:?}",
        report.workers, report.queue_cap, report.uptime,
    );
    debug_assert_eq!(report.completed + report.deadline_missed, report.accepted);
    debug_assert_eq!(
        report.accepted + report.rejected + report.shed,
        report.submitted
    );

    // Conservation recomputed purely from the metrics registry — no
    // loop counter or server tally feeds this check.
    let totals = telemetry.totals();
    assert!(
        totals.conserved(),
        "telemetry registry must conserve jobs \
         (submitted == accepted + rejected + shed): {totals:?}"
    );
    assert_eq!(
        (totals.submitted, totals.rejected, totals.shed),
        (report.submitted, report.rejected, report.shed),
        "telemetry registry disagrees with the server report"
    );

    if let Some(path) = metrics_out {
        let error = |e| format!("cannot write metrics `{path}`: {e}");
        let file = std::fs::File::create(path).map_err(error)?;
        let mut out = std::io::BufWriter::new(file);
        write_jsonl(&mut out, &telemetry).map_err(error)?;
        std::io::Write::flush(&mut out).map_err(error)?;
        println!("wrote metrics: {path}");
    }
    if let Some(path) = trace_out {
        let error = |e| format!("cannot write trace `{path}`: {e}");
        let file = std::fs::File::create(path).map_err(error)?;
        let mut out = std::io::BufWriter::new(file);
        write_chrome_trace(&mut out, &telemetry).map_err(error)?;
        std::io::Write::flush(&mut out).map_err(error)?;
        println!("wrote trace: {path}");
    }

    if failed > 0 {
        Err(format!("{failed} jobs failed"))
    } else {
        Ok(())
    }
}

/// `odburg cluster serve <manifest|->`: run a manifest through an
/// in-process N-shard [`ShardCluster`] — consistent-hash routing, one
/// writer lease per target, table shipping to replicas after the drain.
///
/// `--join=<addr>` connects to a listening peer *first* and installs
/// every shipment it sends before serving, so the manifest's warm
/// traffic labels entirely from shipped tables; the final report prints
/// the cluster-wide grow-path counters to make that visible.
/// `--listen=<addr>` is the other half: after the drain (when the
/// writers are warm), bind, accept one joining process, and send it one
/// framed shipment per registered target.
///
/// Conservation is asserted twice at shutdown: from the
/// [`ClusterReport`] and — independently — from the per-shard telemetry
/// registries alone.
#[allow(clippy::too_many_arguments)]
fn cluster_serve(
    manifest: &str,
    shards: usize,
    workers: Option<usize>,
    tables_dir: Option<&str>,
    memory_budget: Option<MemoryBudget>,
    queue_cap: Option<usize>,
    deadline_ms: Option<u64>,
    sched: Option<SchedPolicy>,
    fair: bool,
    listen: Option<&str>,
    join: Option<&str>,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    use std::io::BufRead;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    use odburg::select::telemetry::write_jsonl;
    use odburg::select::InstallError;
    use odburg::service::{JobOptions, ServeError, ServerConfig, SubmitError};

    let cluster = ShardCluster::with_builtin_targets(ClusterConfig {
        shards,
        vnodes: 64,
        server: ServerConfig {
            workers: workers.unwrap_or(0),
            queue_cap: queue_cap.unwrap_or(0),
            sched: sched.unwrap_or_default(),
            shed_infeasible: sched == Some(SchedPolicy::Edf),
            fair: fair.then(FairConfig::default),
            tables_dir: tables_dir.map(Into::into),
            memory_budget,
            analysis_policy: AnalysisPolicy::Deny,
        },
    });
    let options = JobOptions {
        deadline: deadline_ms.map(Duration::from_millis),
        ..JobOptions::default()
    };

    // Join first: every shard warm-starts from the listener's shipped
    // tables before the manifest's first job is submitted.
    if let Some(addr) = join {
        // The listener binds only after its own manifest drains, so a
        // joiner started alongside it retries for up to 30 seconds
        // instead of failing on the first connection refusal.
        let stream = {
            let mut attempt = 0u32;
            loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(e) if attempt < 60 => {
                        if attempt == 0 {
                            println!("waiting for the listener at {addr} ({e})");
                        }
                        attempt += 1;
                        std::thread::sleep(Duration::from_millis(500));
                    }
                    Err(e) => return Err(format!("cannot join `{addr}`: {e}")),
                }
            }
        };
        let mut transport = SocketTransport::new(stream);
        let mut received = 0usize;
        while let Some(frame) = transport
            .recv()
            .map_err(|e| format!("join `{addr}`: receive failed: {e}"))?
        {
            let shipment = Shipment::decode(&frame)
                .map_err(|e| format!("join `{addr}`: bad shipment: {e}"))?;
            let mut installed = 0usize;
            for idx in 0..cluster.shard_count() {
                match cluster.deliver_shipment(idx, &shipment) {
                    Ok(_) => installed += 1,
                    Err(ShipError::Install(InstallError::Stale { .. })) => {}
                    Err(e) => {
                        return Err(format!(
                            "join `{addr}`: installing `{}` on shard {idx} failed: {e}",
                            shipment.target
                        ));
                    }
                }
            }
            println!(
                "joined: installed `{}` on {installed}/{} shards ({} bytes, writer epoch {})",
                shipment.target,
                cluster.shard_count(),
                shipment.bytes.len(),
                shipment.writer_epoch,
            );
            received += 1;
        }
        if received == 0 {
            return Err(format!("join `{addr}`: the listener sent no shipments"));
        }
    }

    let stdin = std::io::stdin();
    let reader: Box<dyn BufRead> = if manifest == "-" {
        Box::new(stdin.lock())
    } else {
        let file = std::fs::File::open(manifest)
            .map_err(|e| format!("cannot read manifest `{manifest}`: {e}"))?;
        Box::new(std::io::BufReader::new(file))
    };

    let mut accepted: Vec<(ClusterSubmit, String)> = Vec::new();
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    for (idx, raw) in reader.lines().enumerate() {
        let raw = raw.map_err(|e| format!("cannot read manifest `{manifest}`: {e}"))?;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (target, file) = line
            .split_once(char::is_whitespace)
            .map(|(t, f)| (t, f.trim()))
            .filter(|(t, f)| !t.is_empty() && !f.is_empty())
            .ok_or_else(|| {
                format!("{manifest}:{lineno}: expected `<target> <sexpr-file>`, got `{line}`")
            })?;

        // Targets beyond the built-ins register on every shard on first
        // sight, exactly as in `batch`/`serve`.
        if cluster.writer(target).is_none() {
            let grammar = load_grammar(target).map_err(|e| format!("{manifest}:{lineno}: {e}"))?;
            cluster
                .register_normal(target, Arc::new(grammar.normalize()))
                .map_err(|e| registration_error(manifest, lineno, e))?;
        }

        let trees = std::fs::read_to_string(file)
            .map_err(|e| format!("{manifest}:{lineno}: cannot read `{file}`: {e}"))?;
        let mut forest = Forest::new();
        for tree in trees.lines() {
            let tree = tree.trim();
            if tree.is_empty() || tree.starts_with('#') {
                continue;
            }
            let root = parse_sexpr(&mut forest, tree)
                .map_err(|e| format!("{manifest}:{lineno}: {file}: bad tree: {e}"))?;
            forest.add_root(root);
        }
        if forest.is_empty() {
            return Err(format!("{manifest}:{lineno}: {file}: no trees"));
        }

        submitted += 1;
        match cluster.submit_with(target, forest, options) {
            Ok(sub) => accepted.push((sub, file.to_owned())),
            Err(ClusterSubmitError::Submit {
                shard,
                error: SubmitError::QueueFull { capacity },
            }) => {
                rejected += 1;
                println!("-- {target} {file}: shard {shard} rejected (queue full at {capacity})");
            }
            Err(ClusterSubmitError::Submit {
                shard,
                error:
                    SubmitError::Infeasible {
                        estimated_wait,
                        deadline,
                    },
            }) => {
                shed += 1;
                println!(
                    "-- {target} {file}: shard {shard} shed (estimated wait {estimated_wait:?} \
                     exceeds the {deadline:?} deadline)"
                );
            }
            Err(e) => return Err(format!("{manifest}:{lineno}: {e}")),
        }
    }
    if submitted == 0 {
        return Err(format!("manifest `{manifest}` contains no jobs"));
    }

    // Drain: every accepted job resolves, whichever shard took it.
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut missed = 0u64;
    for (sub, file) in accepted {
        let done = sub.handle.wait();
        match done.reduce() {
            Ok(red) => {
                completed += 1;
                println!(
                    "{} {} {file} [shard {}]: {} nodes, {} instructions, cost {}",
                    done.ticket,
                    done.target,
                    sub.shard,
                    done.forest.len(),
                    red.len(),
                    red.total_cost
                );
            }
            Err(ServeError::Job(odburg::service::JobError::DeadlineExceeded { missed_by })) => {
                missed += 1;
                println!(
                    "{} {} {file} [shard {}]: DEADLINE MISSED by {missed_by:?}",
                    done.ticket, done.target, sub.shard
                );
            }
            Err(e) => {
                completed += 1;
                failed += 1;
                println!(
                    "{} {} {file} [shard {}]: FAILED: {e}",
                    done.ticket, done.target, sub.shard
                );
            }
        }
    }

    // Replicate the warm writers' tables to every replica.
    for (target, result) in cluster.ship_all() {
        match result {
            Ok(r) => println!(
                "shipped {target}: snapshot epoch {}, {} bytes, installed on {:?}, \
                 already current on {:?}",
                r.snapshot_epoch, r.bytes, r.installed, r.already_current,
            ),
            Err(e) => eprintln!("odburg: cannot ship `{target}`: {e}"),
        }
    }

    // Listen last: the joining process receives tables the manifest has
    // already warmed.
    if let Some(addr) = listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve the listening address: {e}"))?;
        println!("listening on {local}; waiting for one joining process");
        let (stream, peer) = listener
            .accept()
            .map_err(|e| format!("accept on `{addr}` failed: {e}"))?;
        let mut transport = SocketTransport::new(stream);
        for target in cluster.targets() {
            let shipment = cluster
                .prepare_shipment(&target)
                .map_err(|e| format!("cannot prepare a shipment for `{target}`: {e}"))?;
            let bytes = shipment.bytes.len();
            transport
                .send(&shipment.encode())
                .map_err(|e| format!("shipping `{target}` to {peer} failed: {e}"))?;
            println!("shipped {target} to {peer} ({bytes} bytes)");
        }
    }

    let report = cluster.shutdown();
    for s in &report.per_shard {
        println!(
            "shard {}{}: submitted {}, accepted {}, completed {}, failed {}, \
             deadline-missed {}, rejected {}, shed {}",
            s.shard,
            if s.killed { " (killed)" } else { "" },
            s.report.submitted,
            s.report.accepted,
            s.report.completed,
            s.report.failed,
            s.report.deadline_missed,
            s.report.rejected,
            s.report.shed,
        );
    }
    if join.is_some() {
        // The joining run's proof of warm start: everything the peer had
        // already labeled must land in shipped tables, not the grow path.
        let mut states_built = 0u64;
        let mut memo_misses = 0u64;
        for s in &report.per_shard {
            let counters = s.report.counters();
            states_built += counters.states_built;
            memo_misses += counters.memo_misses;
        }
        println!(
            "warm start: {states_built} states built, {memo_misses} memo misses across shards"
        );
    }
    println!(
        "cluster: {} shards, submitted {submitted}, completed {completed}, failed {failed}, \
         rejected {rejected}, shed {shed}, deadline-missed {missed}; {} shipments, \
         {} ship rejects, {} reroutes, {} writer elections",
        shards, report.shipments, report.ship_rejects, report.reroutes, report.writer_elections,
    );
    assert!(
        report.conserved(),
        "cluster report must conserve jobs: {report:?}"
    );

    // Conservation recomputed purely from the telemetry registries — no
    // loop counter or server tally feeds this check.
    let mut totals = JobCounts::default();
    for (_, telemetry) in cluster.shard_telemetries() {
        totals.merge(&telemetry.totals());
    }
    assert!(
        totals.conserved(),
        "shard telemetry must conserve jobs \
         (submitted == accepted + rejected + shed): {totals:?}"
    );
    assert_eq!(
        (totals.submitted, totals.rejected, totals.shed),
        (report.submitted, report.rejected, report.shed),
        "shard telemetry disagrees with the cluster report"
    );

    if let Some(path) = metrics_out {
        let error = |e| format!("cannot write metrics `{path}`: {e}");
        let file = std::fs::File::create(path).map_err(error)?;
        let mut out = std::io::BufWriter::new(file);
        write_jsonl(&mut out, cluster.telemetry()).map_err(error)?;
        for (_, telemetry) in cluster.shard_telemetries() {
            write_jsonl(&mut out, &telemetry).map_err(error)?;
        }
        std::io::Write::flush(&mut out).map_err(error)?;
        println!("wrote metrics: {path}");
    }
    if let Some(path) = trace_out {
        let error = |e| format!("cannot write trace `{path}`: {e}");
        let file = std::fs::File::create(path).map_err(error)?;
        let mut out = std::io::BufWriter::new(file);
        cluster.write_chrome_trace(&mut out).map_err(error)?;
        std::io::Write::flush(&mut out).map_err(error)?;
        println!("wrote trace: {path}");
    }

    if failed > 0 {
        Err(format!("{failed} jobs failed"))
    } else {
        Ok(())
    }
}

fn stats(grammar: &Grammar) -> Result<(), String> {
    let s = grammar.stats();
    println!("grammar:        {}", s.name);
    println!("rules:          {}", s.rules);
    println!("chain rules:    {}", s.chain_rules);
    println!("dynamic rules:  {}", s.dynamic_rules);
    println!("operators:      {}", s.operators);
    println!("nonterminals:   {}", s.nonterminals);
    println!("normal rules:   {}", s.normal_rules);
    println!("normal nts:     {}", s.normal_nonterminals);
    let full = analysis::analyze_full(&grammar.normalize());
    if full.diagnostics.is_empty() {
        println!("lint:           clean");
    }
    for d in &full.diagnostics {
        println!("lint:           {d}");
    }
    if let Some(bound) = &full.state_bound {
        println!(
            "state bound:    {} achievable states (fixed-cost rules)",
            bound.states
        );
    }
    Ok(())
}

fn lint_cmd(grammar: &Grammar, format: FormatFlag, deny: Severity) -> Result<(), String> {
    let name = grammar.name().to_owned();
    let normal = grammar.normalize();
    let full = analysis::analyze_full(&normal);
    match format {
        FormatFlag::Text => print_lint_text(&name, &full),
        FormatFlag::Json => print_lint_json(&name, &normal, &full),
    }
    let denied = full
        .diagnostics
        .iter()
        .filter(|d| d.severity >= deny)
        .count();
    if denied > 0 {
        Err(format!(
            "{name}: {denied} finding(s) at {deny} severity or above (--deny={deny})"
        ))
    } else {
        Ok(())
    }
}

fn print_lint_text(name: &str, full: &analysis::Analysis) {
    if full.diagnostics.is_empty() {
        println!("{name}: clean");
    }
    for d in &full.diagnostics {
        println!("{name}: {d}");
        match &d.witness {
            Some(analysis::Witness::NoCover { forest, root }) => {
                println!("  witness: {}", to_sexpr(forest, *root));
            }
            Some(analysis::Witness::Divergence {
                forest,
                roots,
                deltas,
                ..
            }) => {
                println!(
                    "  witness: delta {} on {}",
                    deltas.0,
                    to_sexpr(forest, roots.0)
                );
                println!(
                    "  witness: delta {} on {}",
                    deltas.1,
                    to_sexpr(forest, roots.1)
                );
            }
            None => {}
        }
    }
    match &full.state_bound {
        Some(b) => {
            let per_op: Vec<String> = b.per_op.iter().map(|(op, n)| format!("{op}:{n}")).collect();
            println!("{name}: state bound {} ({})", b.states, per_op.join(", "));
        }
        None => println!("{name}: no state bound (exploration did not converge)"),
    }
}

/// Minimal JSON string escaping (the report uses no nested user text
/// beyond messages, names and s-exprs).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_lint_json(name: &str, normal: &NormalGrammar, full: &analysis::Analysis) {
    let count = |s: Severity| full.diagnostics.iter().filter(|d| d.severity == s).count();
    let quote_nt = |n: &odburg::grammar::NtId| format!("\"{}\"", json_escape(normal.nt_name(*n)));
    let mut findings = Vec::new();
    for d in &full.diagnostics {
        let nts: Vec<String> = d.nonterminals.iter().map(&quote_nt).collect();
        let rules: Vec<String> = d.rules.iter().map(|r| r.0.to_string()).collect();
        let ops: Vec<String> = d
            .operators
            .iter()
            .map(|op| format!("\"{}\"", json_escape(&op.to_string())))
            .collect();
        let cycle: Vec<String> = d.cycle.iter().map(&quote_nt).collect();
        let witness = match &d.witness {
            Some(analysis::Witness::NoCover { forest, root }) => format!(
                "{{\"kind\":\"no_cover\",\"tree\":\"{}\"}}",
                json_escape(&to_sexpr(forest, *root))
            ),
            Some(analysis::Witness::Divergence {
                forest,
                roots,
                nonterminals,
                deltas,
            }) => format!(
                "{{\"kind\":\"divergence\",\"nonterminals\":[\"{}\",\"{}\"],\
                 \"trees\":[{{\"delta\":{},\"tree\":\"{}\"}},{{\"delta\":{},\"tree\":\"{}\"}}]}}",
                json_escape(normal.nt_name(nonterminals.0)),
                json_escape(normal.nt_name(nonterminals.1)),
                deltas.0,
                json_escape(&to_sexpr(forest, roots.0)),
                deltas.1,
                json_escape(&to_sexpr(forest, roots.1))
            ),
            None => "null".to_owned(),
        };
        findings.push(format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\
             \"nonterminals\":[{}],\"rules\":[{}],\"operators\":[{}],\
             \"cycle\":[{}],\"witness\":{}}}",
            d.code,
            d.severity,
            json_escape(&d.message),
            nts.join(","),
            rules.join(","),
            ops.join(","),
            cycle.join(","),
            witness
        ));
    }
    let bound = match &full.state_bound {
        Some(b) => {
            let per_op: Vec<String> = b
                .per_op
                .iter()
                .map(|(op, n)| {
                    format!(
                        "{{\"op\":\"{}\",\"states\":{}}}",
                        json_escape(&op.to_string()),
                        n
                    )
                })
                .collect();
            format!(
                "{{\"states\":{},\"per_op\":[{}]}}",
                b.states,
                per_op.join(",")
            )
        }
        None => "null".to_owned(),
    };
    println!(
        "{{\"grammar\":\"{}\",\"counts\":{{\"error\":{},\"warning\":{},\"info\":{}}},\
         \"findings\":[{}],\"state_bound\":{}}}",
        json_escape(name),
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info),
        findings.join(","),
        bound
    );
}

fn normal(grammar: &Grammar) -> Result<(), String> {
    let normal = grammar.normalize();
    for rule in normal.rules() {
        let lhs = normal.nt_name(rule.lhs);
        let marker = if rule.is_final { "" } else { "  (helper)" };
        match &rule.rhs {
            odburg::grammar::NormalRhs::Base { op, operands } => {
                let ops: Vec<&str> = operands.iter().map(|&n| normal.nt_name(n)).collect();
                println!("{lhs}: {op}({}){marker}", ops.join(", "));
            }
            odburg::grammar::NormalRhs::Chain { from } => {
                println!("{lhs}: {}{marker}", normal.nt_name(*from));
            }
        }
    }
    Ok(())
}

fn automaton(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    let s = auto.stats();
    println!("states:             {}", s.states);
    println!("representer states: {}", s.representers);
    println!("transition entries: {}", s.transition_entries);
    println!("table bytes:        {}", s.bytes);
    println!("build time:         {:?}", s.build_time);
    println!("build work units:   {}", s.build_work);
    if grammar.stats().dynamic_rules > 0 {
        println!(
            "note: {} dynamic-cost rules were stripped (offline automata cannot represent them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn generate(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    print!(
        "{}",
        odburg::select::generate_rust(&auto, &format!("odburg generate {}", grammar.name()))
    );
    if grammar.stats().dynamic_rules > 0 {
        eprintln!(
            "note: {} dynamic-cost rules were stripped (hard-coded tables cannot represent them; use the on-demand automaton to keep them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn parse_tree(grammar_name: &str, src: &str) -> Result<(Forest, NodeId), String> {
    let mut forest = Forest::new();
    let root =
        parse_sexpr(&mut forest, src).map_err(|e| format!("{grammar_name}: bad tree: {e}"))?;
    forest.add_root(root);
    Ok((forest, root))
}

fn label(
    grammar: &Grammar,
    strategy: Strategy,
    tables: Option<&str>,
    governed: Option<OnDemandConfig>,
    src: &str,
) -> Result<(), String> {
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut labeler = build_labeler(grammar, strategy, tables, governed)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let normal = labeler.grammar();

    match (&labeler, &labeling) {
        // Automaton strategies: print the state table the automaton
        // assigned, exactly as the paper's examples do.
        (AnyLabeler::OnDemand(od), AnyLabeling::States(l)) => {
            for (id, node) in forest.iter() {
                let state = l.state_of(id);
                let data = od.state(state);
                print!(
                    "{id} {:<10} -> state {:>3}:",
                    node.op().to_string(),
                    state.0
                );
                for nt in 0..normal.num_nts() {
                    let nt = odburg::grammar::NtId(nt as u16);
                    if let Some(rule) = data.rule(nt) {
                        print!(" {}={}#{}", normal.nt_name(nt), data.cost(nt), rule.0);
                    }
                }
                println!();
            }
        }
        // Every other strategy: print the chosen rule per derivable
        // nonterminal through the unified chooser.
        _ => {
            let chooser = labeler.chooser(&labeling);
            for (id, node) in forest.iter() {
                print!("{id} {:<10} ->", node.op().to_string());
                for nt in 0..normal.num_nts() {
                    let nt = odburg::grammar::NtId(nt as u16);
                    if let Some(rule) = chooser.rule_for(id, nt) {
                        print!(" {}=#{}", normal.nt_name(nt), rule.0);
                    }
                }
                println!();
            }
        }
    }
    println!("{}", labeler.stats_line());
    Ok(())
}

fn emit(
    grammar: &Grammar,
    strategy: Strategy,
    tables: Option<&str>,
    governed: Option<OnDemandConfig>,
    src: &str,
) -> Result<(), String> {
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut labeler = build_labeler(grammar, strategy, tables, governed)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeler.chooser(&labeling);
    let red = odburg::codegen::reduce_forest(&forest, &labeler.grammar(), &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    println!("; cost {}", red.total_cost);
    Ok(())
}

fn compile(
    grammar: &Grammar,
    strategy: Strategy,
    tables: Option<&str>,
    governed: Option<OnDemandConfig>,
    path: &str,
) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let forest = odburg::frontend::compile(&source).map_err(|e| format!("{path}: {e}"))?;
    let mut labeler = build_labeler(grammar, strategy, tables, governed)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeler.chooser(&labeling);
    let red = odburg::codegen::reduce_forest(&forest, &labeler.grammar(), &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    eprintln!(
        "; {} nodes, {} instructions, cost {}, {}",
        forest.len(),
        red.len(),
        red.total_cost,
        labeler.stats_line()
    );
    Ok(())
}

/// Compares the chosen strategy against every other on a replicated
/// MiniC workload — all driven through the `Labeler` trait. With
/// `--tables`, every strategy whose configuration matches the persisted
/// tables is warm-started from them.
fn bench(grammar: &Grammar, chosen: Strategy, tables: Option<&str>) -> Result<(), String> {
    use std::time::Instant;
    let suite = odburg::workloads::combined_workload();
    let forest = odburg::workloads::replicate(&suite.forest, 20);
    println!("workload: MiniC suite x20 ({} nodes)", forest.len());

    // Import the table file once per distinct automaton configuration
    // (ondemand and shared use the same tables) and reuse the snapshot
    // across strategies.
    let mut imported: Vec<(OnDemandConfig, Option<Arc<AutomatonSnapshot>>)> = Vec::new();
    let mut snapshot_for = |strategy: Strategy| -> Option<Arc<AutomatonSnapshot>> {
        let path = tables?;
        let config = strategy.ondemand_config()?;
        if let Some((_, cached)) = imported.iter().find(|(c, _)| *c == config) {
            return cached.clone();
        }
        let loaded = load_tables_for(grammar, strategy, path).ok().map(Arc::new);
        imported.push((config, loaded.clone()));
        loaded
    };
    // Fail loudly if the chosen strategy cannot use the given tables;
    // other strategies just fall back to a cold start.
    if let Some(path) = tables {
        if snapshot_for(chosen).is_none() {
            // Re-run uncached for the error message.
            load_tables_for(grammar, chosen, path)?;
        }
    }

    let mut results: Vec<(Strategy, f64)> = Vec::new();
    for strategy in Strategy::ALL {
        let warm =
            snapshot_for(strategy).and_then(|snap| AnyLabeler::build_warm(strategy, snap).ok());
        let mut labeler = match warm {
            Some(l) => l,
            None => match AnyLabeler::build(strategy, grammar) {
                Ok(l) => l,
                Err(e) => {
                    println!("{:<20} unavailable: {e}", strategy.to_string());
                    continue;
                }
            },
        };
        // Warm (matters for the automata), then measure one pass.
        if labeler.label_forest(&forest).is_err() {
            println!("{:<20} cannot label this workload", strategy.to_string());
            continue;
        }
        let t = Instant::now();
        labeler
            .label_forest(&forest)
            .map_err(|e| format!("{strategy}: {e}"))?;
        let ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;
        println!("{:<20} {ns:>8.1} ns/node", strategy.to_string());
        results.push((strategy, ns));
    }
    if let (Some(&(_, chosen_ns)), Some(&(_, dp_ns))) = (
        results.iter().find(|(s, _)| *s == chosen),
        results.iter().find(|(s, _)| *s == Strategy::Dp),
    ) {
        println!(
            "{chosen} vs dp: {:.2}x {}",
            (dp_ns / chosen_ns).max(chosen_ns / dp_ns),
            if chosen_ns <= dp_ns {
                "faster"
            } else {
                "slower"
            }
        );
    }
    Ok(())
}
