//! The `odburg` command-line tool.
//!
//! ```text
//! odburg stats   <grammar>             grammar statistics and lints
//! odburg normal  <grammar>             print the normal form
//! odburg automaton <grammar>           build the offline automaton, print sizes
//! odburg generate  <grammar>           emit a hard-coded Rust labeler (burg style)
//! odburg label   <grammar> <sexpr>     label one tree, print states and rules
//! odburg emit    <grammar> <sexpr>     select and print instructions
//! odburg compile <grammar> <file.mc>   compile a MiniC file and print assembly
//! odburg bench   <grammar>             quick dp vs on-demand comparison
//! ```
//!
//! `<grammar>` is a built-in target name (demo, x86ish, riscish, sparcish,
//! alphaish, jvmish) or a path to a `.burg` file (dynamic costs in files are
//! declared but unbound, i.e. never applicable).

use std::process::ExitCode;
use std::sync::Arc;

use odburg::grammar::analysis;
use odburg::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("odburg: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: odburg <stats|normal|automaton|generate|label|emit|compile|bench> <grammar> [input]";
    let command = args.first().ok_or(usage)?;
    let grammar_name = args.get(1).ok_or(usage)?;
    let grammar = load_grammar(grammar_name)?;

    match command.as_str() {
        "stats" => stats(&grammar),
        "normal" => normal(&grammar),
        "automaton" => automaton(&grammar),
        "generate" => generate(&grammar),
        "label" => label(&grammar, args.get(2).ok_or("label needs an s-expression")?),
        "emit" => emit(&grammar, args.get(2).ok_or("emit needs an s-expression")?),
        "compile" => compile(&grammar, args.get(2).ok_or("compile needs a MiniC file")?),
        "bench" => bench(&grammar),
        other => Err(format!("unknown command `{other}`\n{usage}")),
    }
}

fn load_grammar(name: &str) -> Result<Grammar, String> {
    if let Some(g) = odburg::targets::by_name(name) {
        return Ok(g);
    }
    let text = std::fs::read_to_string(name)
        .map_err(|e| format!("cannot read grammar `{name}`: {e}"))?;
    parse_grammar(&text).map_err(|e| format!("{name}: {e}"))
}

fn stats(grammar: &Grammar) -> Result<(), String> {
    let s = grammar.stats();
    println!("grammar:        {}", s.name);
    println!("rules:          {}", s.rules);
    println!("chain rules:    {}", s.chain_rules);
    println!("dynamic rules:  {}", s.dynamic_rules);
    println!("operators:      {}", s.operators);
    println!("nonterminals:   {}", s.nonterminals);
    println!("normal rules:   {}", s.normal_rules);
    println!("normal nts:     {}", s.normal_nonterminals);
    let normal = grammar.normalize();
    let issues = analysis::lint(&normal);
    if issues.is_empty() {
        println!("lint:           clean");
    }
    for issue in issues {
        println!("lint:           {}", issue.message);
    }
    Ok(())
}

fn normal(grammar: &Grammar) -> Result<(), String> {
    let normal = grammar.normalize();
    for rule in normal.rules() {
        let lhs = normal.nt_name(rule.lhs);
        let marker = if rule.is_final { "" } else { "  (helper)" };
        match &rule.rhs {
            odburg::grammar::NormalRhs::Base { op, operands } => {
                let ops: Vec<&str> = operands.iter().map(|&n| normal.nt_name(n)).collect();
                println!("{lhs}: {op}({}){marker}", ops.join(", "));
            }
            odburg::grammar::NormalRhs::Chain { from } => {
                println!("{lhs}: {}{marker}", normal.nt_name(*from));
            }
        }
    }
    Ok(())
}

fn automaton(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    let s = auto.stats();
    println!("states:             {}", s.states);
    println!("representer states: {}", s.representers);
    println!("transition entries: {}", s.transition_entries);
    println!("table bytes:        {}", s.bytes);
    println!("build time:         {:?}", s.build_time);
    println!("build work units:   {}", s.build_work);
    if grammar.stats().dynamic_rules > 0 {
        println!(
            "note: {} dynamic-cost rules were stripped (offline automata cannot represent them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn generate(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    print!(
        "{}",
        odburg::select::generate_rust(&auto, &format!("odburg generate {}", grammar.name()))
    );
    if grammar.stats().dynamic_rules > 0 {
        eprintln!(
            "note: {} dynamic-cost rules were stripped (hard-coded tables cannot represent them; use the on-demand automaton to keep them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn parse_tree(grammar_name: &str, src: &str) -> Result<(Forest, NodeId), String> {
    let mut forest = Forest::new();
    let root =
        parse_sexpr(&mut forest, src).map_err(|e| format!("{grammar_name}: bad tree: {e}"))?;
    forest.add_root(root);
    Ok((forest, root))
}

fn label(grammar: &Grammar, src: &str) -> Result<(), String> {
    let normal = Arc::new(grammar.normalize());
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut od = OnDemandAutomaton::new(normal.clone());
    let labeling = od
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    for (id, node) in forest.iter() {
        let state = labeling.state_of(id);
        let data = od.state(state);
        print!("{id} {:<10} -> state {:>3}:", node.op().to_string(), state.0);
        for nt in 0..normal.num_nts() {
            let nt = odburg::grammar::NtId(nt as u16);
            if let Some(rule) = data.rule(nt) {
                print!(
                    " {}={}#{}",
                    normal.nt_name(nt),
                    data.cost(nt),
                    rule.0
                );
            }
        }
        println!();
    }
    let stats = od.stats();
    println!(
        "{} states, {} transitions, {} signatures created",
        stats.states, stats.transitions, stats.signatures
    );
    Ok(())
}

fn emit(grammar: &Grammar, src: &str) -> Result<(), String> {
    let normal = Arc::new(grammar.normalize());
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut od = OnDemandAutomaton::new(normal.clone());
    let labeling = od
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeling.chooser(&od);
    let red = odburg::codegen::reduce_forest(&forest, &normal, &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    println!("; cost {}", red.total_cost);
    Ok(())
}

fn compile(grammar: &Grammar, path: &str) -> Result<(), String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let forest = odburg::frontend::compile(&source).map_err(|e| format!("{path}: {e}"))?;
    let normal = Arc::new(grammar.normalize());
    let mut od = OnDemandAutomaton::new(normal.clone());
    let labeling = od
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeling.chooser(&od);
    let red = odburg::codegen::reduce_forest(&forest, &normal, &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    eprintln!(
        "; {} nodes, {} instructions, cost {}, {} states",
        forest.len(),
        red.len(),
        red.total_cost,
        od.stats().states
    );
    Ok(())
}

fn bench(grammar: &Grammar) -> Result<(), String> {
    use std::time::Instant;
    let normal = Arc::new(grammar.normalize());
    let suite = odburg::workloads::combined_workload();
    let forest = odburg::workloads::replicate(&suite.forest, 20);

    let mut dp = DpLabeler::new(normal.clone());
    dp.label_forest(&forest).map_err(|e| e.to_string())?;
    let t = Instant::now();
    dp.label_forest(&forest).map_err(|e| e.to_string())?;
    let dp_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;

    let mut od = OnDemandAutomaton::new(normal);
    od.label_forest(&forest).map_err(|e| e.to_string())?;
    let t = Instant::now();
    od.label_forest(&forest).map_err(|e| e.to_string())?;
    let od_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;

    println!("workload: MiniC suite x20 ({} nodes)", forest.len());
    println!("dp:        {dp_ns:.1} ns/node");
    println!("on-demand: {od_ns:.1} ns/node  ({:.2}x faster)", dp_ns / od_ns);
    println!("states:    {}", od.stats().states);
    Ok(())
}
