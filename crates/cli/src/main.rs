//! The `odburg` command-line tool.
//!
//! ```text
//! odburg stats   <grammar>             grammar statistics and lints
//! odburg normal  <grammar>             print the normal form
//! odburg automaton <grammar>           build the offline automaton, print sizes
//! odburg generate  <grammar>           emit a hard-coded Rust labeler (burg style)
//! odburg label   <grammar> <sexpr>     label one tree, print states and rules
//! odburg emit    <grammar> <sexpr>     select and print instructions
//! odburg compile <grammar> <file.mc>   compile a MiniC file and print assembly
//! odburg bench   <grammar>             quick cross-strategy comparison
//! ```
//!
//! `<grammar>` is a built-in target name (demo, x86ish, riscish, sparcish,
//! alphaish, jvmish) or a path to a `.burg` file (dynamic costs in files are
//! declared but unbound, i.e. never applicable).
//!
//! `label`, `emit`, `compile` and `bench` accept `--labeler=<name>`
//! (ondemand, ondemand-projected, shared, offline, dp, macro); every
//! strategy is constructed and driven through the unified
//! [`Labeler`](odburg_core::Labeler) trait via
//! [`odburg::strategy::AnyLabeler`].

use std::process::ExitCode;
use std::sync::Arc;

use odburg::grammar::analysis;
use odburg::prelude::*;
use odburg::strategy::{AnyLabeler, AnyLabeling, Strategy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("odburg: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: odburg <stats|normal|automaton|generate|label|emit|compile|bench> \
                     <grammar> [input] [--labeler=<name>]";

fn run(args: &[String]) -> Result<(), String> {
    // Split off the strategy flag; everything else is positional.
    let mut strategy = Strategy::OnDemand;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--labeler=") {
            strategy = name.parse().map_err(|e| format!("{e}"))?;
        } else if arg == "--labeler" {
            let name = iter.next().ok_or("--labeler needs a value")?;
            strategy = name.parse().map_err(|e| format!("{e}"))?;
        } else {
            positional.push(arg);
        }
    }

    let command = positional.first().ok_or(USAGE)?;
    let grammar_name = positional.get(1).ok_or(USAGE)?;
    let grammar = load_grammar(grammar_name)?;

    match command.as_str() {
        "stats" => stats(&grammar),
        "normal" => normal(&grammar),
        "automaton" => automaton(&grammar),
        "generate" => generate(&grammar),
        "label" => label(
            &grammar,
            strategy,
            positional.get(2).ok_or("label needs an s-expression")?,
        ),
        "emit" => emit(
            &grammar,
            strategy,
            positional.get(2).ok_or("emit needs an s-expression")?,
        ),
        "compile" => compile(
            &grammar,
            strategy,
            positional.get(2).ok_or("compile needs a MiniC file")?,
        ),
        "bench" => bench(&grammar, strategy),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_grammar(name: &str) -> Result<Grammar, String> {
    if let Some(g) = odburg::targets::by_name(name) {
        return Ok(g);
    }
    let text =
        std::fs::read_to_string(name).map_err(|e| format!("cannot read grammar `{name}`: {e}"))?;
    parse_grammar(&text).map_err(|e| format!("{name}: {e}"))
}

fn build_labeler(grammar: &Grammar, strategy: Strategy) -> Result<AnyLabeler, String> {
    AnyLabeler::build(strategy, grammar)
        .map_err(|e| format!("cannot build `{strategy}` labeler: {e}"))
}

fn stats(grammar: &Grammar) -> Result<(), String> {
    let s = grammar.stats();
    println!("grammar:        {}", s.name);
    println!("rules:          {}", s.rules);
    println!("chain rules:    {}", s.chain_rules);
    println!("dynamic rules:  {}", s.dynamic_rules);
    println!("operators:      {}", s.operators);
    println!("nonterminals:   {}", s.nonterminals);
    println!("normal rules:   {}", s.normal_rules);
    println!("normal nts:     {}", s.normal_nonterminals);
    let normal = grammar.normalize();
    let issues = analysis::lint(&normal);
    if issues.is_empty() {
        println!("lint:           clean");
    }
    for issue in issues {
        println!("lint:           {}", issue.message);
    }
    Ok(())
}

fn normal(grammar: &Grammar) -> Result<(), String> {
    let normal = grammar.normalize();
    for rule in normal.rules() {
        let lhs = normal.nt_name(rule.lhs);
        let marker = if rule.is_final { "" } else { "  (helper)" };
        match &rule.rhs {
            odburg::grammar::NormalRhs::Base { op, operands } => {
                let ops: Vec<&str> = operands.iter().map(|&n| normal.nt_name(n)).collect();
                println!("{lhs}: {op}({}){marker}", ops.join(", "));
            }
            odburg::grammar::NormalRhs::Chain { from } => {
                println!("{lhs}: {}{marker}", normal.nt_name(*from));
            }
        }
    }
    Ok(())
}

fn automaton(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    let s = auto.stats();
    println!("states:             {}", s.states);
    println!("representer states: {}", s.representers);
    println!("transition entries: {}", s.transition_entries);
    println!("table bytes:        {}", s.bytes);
    println!("build time:         {:?}", s.build_time);
    println!("build work units:   {}", s.build_work);
    if grammar.stats().dynamic_rules > 0 {
        println!(
            "note: {} dynamic-cost rules were stripped (offline automata cannot represent them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn generate(grammar: &Grammar) -> Result<(), String> {
    let stripped = grammar
        .without_dynamic_rules()
        .map_err(|e| format!("cannot strip dynamic rules: {e}"))?;
    let auto = OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
        .map_err(|e| format!("automaton construction failed: {e}"))?;
    print!(
        "{}",
        odburg::select::generate_rust(&auto, &format!("odburg generate {}", grammar.name()))
    );
    if grammar.stats().dynamic_rules > 0 {
        eprintln!(
            "note: {} dynamic-cost rules were stripped (hard-coded tables cannot represent them; use the on-demand automaton to keep them)",
            grammar.stats().dynamic_rules
        );
    }
    Ok(())
}

fn parse_tree(grammar_name: &str, src: &str) -> Result<(Forest, NodeId), String> {
    let mut forest = Forest::new();
    let root =
        parse_sexpr(&mut forest, src).map_err(|e| format!("{grammar_name}: bad tree: {e}"))?;
    forest.add_root(root);
    Ok((forest, root))
}

fn label(grammar: &Grammar, strategy: Strategy, src: &str) -> Result<(), String> {
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut labeler = build_labeler(grammar, strategy)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let normal = labeler.grammar();

    match (&labeler, &labeling) {
        // Automaton strategies: print the state table the automaton
        // assigned, exactly as the paper's examples do.
        (AnyLabeler::OnDemand(od), AnyLabeling::States(l)) => {
            for (id, node) in forest.iter() {
                let state = l.state_of(id);
                let data = od.state(state);
                print!(
                    "{id} {:<10} -> state {:>3}:",
                    node.op().to_string(),
                    state.0
                );
                for nt in 0..normal.num_nts() {
                    let nt = odburg::grammar::NtId(nt as u16);
                    if let Some(rule) = data.rule(nt) {
                        print!(" {}={}#{}", normal.nt_name(nt), data.cost(nt), rule.0);
                    }
                }
                println!();
            }
        }
        // Every other strategy: print the chosen rule per derivable
        // nonterminal through the unified chooser.
        _ => {
            let chooser = labeler.chooser(&labeling);
            for (id, node) in forest.iter() {
                print!("{id} {:<10} ->", node.op().to_string());
                for nt in 0..normal.num_nts() {
                    let nt = odburg::grammar::NtId(nt as u16);
                    if let Some(rule) = chooser.rule_for(id, nt) {
                        print!(" {}=#{}", normal.nt_name(nt), rule.0);
                    }
                }
                println!();
            }
        }
    }
    println!("{}", labeler.stats_line());
    Ok(())
}

fn emit(grammar: &Grammar, strategy: Strategy, src: &str) -> Result<(), String> {
    let (forest, _) = parse_tree(grammar.name(), src)?;
    let mut labeler = build_labeler(grammar, strategy)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeler.chooser(&labeling);
    let red = odburg::codegen::reduce_forest(&forest, &labeler.grammar(), &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    println!("; cost {}", red.total_cost);
    Ok(())
}

fn compile(grammar: &Grammar, strategy: Strategy, path: &str) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let forest = odburg::frontend::compile(&source).map_err(|e| format!("{path}: {e}"))?;
    let mut labeler = build_labeler(grammar, strategy)?;
    let labeling = labeler
        .label_forest(&forest)
        .map_err(|e| format!("labeling failed: {e}"))?;
    let chooser = labeler.chooser(&labeling);
    let red = odburg::codegen::reduce_forest(&forest, &labeler.grammar(), &chooser)
        .map_err(|e| format!("reduction failed: {e}"))?;
    print!("{red}");
    eprintln!(
        "; {} nodes, {} instructions, cost {}, {}",
        forest.len(),
        red.len(),
        red.total_cost,
        labeler.stats_line()
    );
    Ok(())
}

/// Compares the chosen strategy against every other on a replicated
/// MiniC workload — all driven through the `Labeler` trait.
fn bench(grammar: &Grammar, chosen: Strategy) -> Result<(), String> {
    use std::time::Instant;
    let suite = odburg::workloads::combined_workload();
    let forest = odburg::workloads::replicate(&suite.forest, 20);
    println!("workload: MiniC suite x20 ({} nodes)", forest.len());

    let mut results: Vec<(Strategy, f64)> = Vec::new();
    for strategy in Strategy::ALL {
        let mut labeler = match AnyLabeler::build(strategy, grammar) {
            Ok(l) => l,
            Err(e) => {
                println!("{:<20} unavailable: {e}", strategy.to_string());
                continue;
            }
        };
        // Warm (matters for the automata), then measure one pass.
        if labeler.label_forest(&forest).is_err() {
            println!("{:<20} cannot label this workload", strategy.to_string());
            continue;
        }
        let t = Instant::now();
        labeler
            .label_forest(&forest)
            .map_err(|e| format!("{strategy}: {e}"))?;
        let ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;
        println!("{:<20} {ns:>8.1} ns/node", strategy.to_string());
        results.push((strategy, ns));
    }
    if let (Some(&(_, chosen_ns)), Some(&(_, dp_ns))) = (
        results.iter().find(|(s, _)| *s == chosen),
        results.iter().find(|(s, _)| *s == Strategy::Dp),
    ) {
        println!(
            "{chosen} vs dp: {:.2}x {}",
            (dp_ns / chosen_ns).max(chosen_ns / dp_ns),
            if chosen_ns <= dp_ns {
                "faster"
            } else {
                "slower"
            }
        );
    }
    Ok(())
}
