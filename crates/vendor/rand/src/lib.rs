//! Offline workspace shim for [`rand`].
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and `f64` ranges, and
//! [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic per seed, and statistically far better than the
//! workloads here need. It intentionally does **not** match the stream of
//! the real `StdRng` (ChaCha12); everything in this workspace that
//! depends on randomness only requires per-seed determinism, which tests
//! assert directly.

use std::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, `start..end`).
    ///
    /// The output type is a free parameter (as in the real `rand`), so
    /// integer range literals infer their type from the use site.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> the full double mantissa range.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                // Lemire-style widening multiply: unbiased enough for
                // workload sampling, and branch-free.
                let offset = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.gen_range(0..13usize);
            assert!(u < 13);
            let i = rng.gen_range(-128..128i64);
            assert!((-128..128).contains(&i));
            let f = rng.gen_range(-1000.0..1000.0);
            assert!((-1000.0..1000.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
