//! Offline workspace shim for [`parking_lot`].
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the (small) subset of the `parking_lot` API the
//! workspace actually uses, implemented over [`std::sync`]. The semantic
//! difference that matters to callers is preserved: **no lock poisoning**
//! — a panic while holding a guard leaves the lock usable, exactly like
//! the real `parking_lot`.
//!
//! Provided: [`Mutex`], [`RwLock`] with `lock` / `read` / `write` /
//! `into_inner` / `get_mut`, and the matching guard type aliases.

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable");
    }
}
