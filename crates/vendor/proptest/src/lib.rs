//! Offline workspace shim for [`proptest`].
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the subset of the proptest API the workspace
//! uses: the [`proptest!`] macro over single `ident in range` arguments,
//! [`prop_assert!`] / [`prop_assert_eq!`], [`ProptestConfig`], and
//! [`TestCaseError`].
//!
//! Differences from the real crate, by design:
//!
//! * cases are drawn from a **deterministic** per-test RNG (no
//!   `PROPTEST_` environment knobs, no persisted failure files), so runs
//!   are reproducible by construction;
//! * there is **no shrinking** — the failing input is reported verbatim,
//!   which is adequate for the seed-shaped inputs used here.

pub use rand;

use std::error::Error;
use std::fmt;

/// A failed property within a [`proptest!`] body.
///
/// Produced by [`prop_assert!`] / [`prop_assert_eq!`]; bodies may also
/// return it through `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TestCaseError {}

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Derives the deterministic RNG seed of one test case.
#[doc(hidden)]
pub fn __case_seed(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index, so distinct
    // properties explore distinct input streams.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Declares deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]   // optional
///     #[test]
///     fn property_name(input in 0u64..100) { ... }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($arg:ident in $range:expr) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            $crate::__case_seed(stringify!($name), case),
                        );
                    let $arg = $crate::rand::Rng::gen_range(&mut rng, $range);
                    let rendered = ::std::format!("{:?}", $arg);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{} ({} = {}): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            stringify!($arg),
                            rendered,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// The usual blanket import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < 1_000_000, "x was {}", x);
        prop_assert_eq!(x * 2, x + x);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(x in 10u64..20) {
            prop_assert!((10..20).contains(&x));
            helper(x)?;
        }

        #[test]
        fn bodies_may_loop(n in 1usize..4) {
            for i in 0..n {
                prop_assert!(i < n);
            }
        }
    }

    #[test]
    fn case_seeds_differ_per_test_and_case() {
        assert_ne!(super::__case_seed("a", 0), super::__case_seed("b", 0));
        assert_ne!(super::__case_seed("a", 0), super::__case_seed("a", 1));
        assert_eq!(super::__case_seed("a", 3), super::__case_seed("a", 3));
    }

    #[test]
    #[should_panic(expected = "property always_fails failed at case 1/")]
    fn failures_report_case_and_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x is only {}", x);
            }
        }
        always_fails();
    }
}
