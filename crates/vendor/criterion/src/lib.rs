//! Offline workspace shim for [`criterion`].
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the subset of the criterion API the workspace
//! benches use — groups, `bench_with_input`, `Bencher::iter` /
//! `iter_custom`, throughput annotation — backed by a straightforward
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery.
//!
//! Results are printed per benchmark and, at the end of the run, written
//! as a JSON array to `target/criterion-results.json` (override with the
//! `CRITERION_JSON` environment variable) so perf trajectories can be
//! tracked across commits.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// One measured benchmark, as recorded into the JSON report.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Elements (or bytes) per second, when a throughput was set.
    pub throughput_per_sec: Option<f64>,
}

/// The benchmark driver. Create through [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// A top-level benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the summary and writes the JSON report. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn finalize(&self) {
        let path = std::env::var("CRITERION_JSON")
            .unwrap_or_else(|_| format!("{}/criterion-results.json", target_dir()));
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!(
                "criterion(shim): wrote {} results to {path}",
                self.results.len()
            ),
            Err(e) => eprintln!("criterion(shim): cannot write {path}: {e}"),
        }
    }

    /// The JSON report: an array of result objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {:.1}, \
                 \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"throughput_per_sec\": {}}}",
                escape(&r.group),
                escape(&r.id),
                r.median_ns,
                r.mean_ns,
                r.samples,
                r.iters_per_sample,
                r.throughput_per_sec
                    .map_or("null".to_owned(), |t| format!("{t:.1}")),
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The build's target directory. Bench binaries run with the *package*
/// directory as CWD, so a relative `target/` would land inside the
/// package in a workspace; resolve the real one from the bench
/// executable's location (`target/<profile>/deps/...`) instead.
fn target_dir() -> String {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return dir;
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors() {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.display().to_string();
            }
        }
    }
    "target".to_owned()
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            measurement: None,
        };
        f(&mut bencher, input);
        self.record(id.id, bencher);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            measurement: None,
        };
        f(&mut bencher);
        self.record(id.to_string(), bencher);
        self
    }

    fn record(&mut self, id: String, bencher: Bencher) {
        let m = bencher
            .measurement
            .expect("benchmark closure must call Bencher::iter or iter_custom");
        let throughput_per_sec = self.throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n,
            };
            per_iter as f64 / (m.median_ns / 1e9)
        });
        let result = BenchResult {
            group: self.name.clone(),
            id,
            median_ns: m.median_ns,
            mean_ns: m.mean_ns,
            samples: m.samples,
            iters_per_sample: m.iters,
            throughput_per_sec,
        };
        let rate = result
            .throughput_per_sec
            .map_or(String::new(), |t| format!("  ({t:.3e} elem/s)"));
        println!(
            "{:<40} {:>14.1} ns/iter{rate}",
            format!("{}/{}", result.group, result.id),
            result.median_ns
        );
        self.criterion.results.push(result);
    }

    /// Ends the group (results were recorded as they ran).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters: u64,
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `f`, reporting wall-clock nanoseconds per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Times batches of `iters` calls with caller-controlled measurement:
    /// `f` receives the iteration count and returns the elapsed time of
    /// exactly those iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let mut per_iter = {
            let warmup_start = Instant::now();
            let mut total = Duration::ZERO;
            let mut iters = 0u64;
            while warmup_start.elapsed() < self.warm_up_time && iters < 1_000_000 {
                total += f(1);
                iters += 1;
            }
            total.as_secs_f64() / iters.max(1) as f64
        };
        if per_iter <= 0.0 {
            per_iter = 1e-9;
        }
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter).round() as u64).max(1);
        let mut samples_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| f(iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.measurement = Some(Measurement {
            median_ns,
            mean_ns,
            samples: samples_ns.len(),
            iters,
        });
    }
}

/// Bundles benchmark functions into a group runner, mirroring the real
/// criterion macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups and writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_measures_and_serializes() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.group, "tiny");
        assert_eq!(r.id, "sum/10");
        assert!(r.median_ns > 0.0);
        assert!(r.throughput_per_sec.unwrap() > 0.0);
        let json = c.to_json();
        assert!(json.contains("\"group\": \"tiny\""));
        assert!(json.contains("\"median_ns\""));
    }

    #[test]
    fn iter_custom_uses_reported_durations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("custom");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(4));
        group.bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
            b.iter_custom(Duration::from_micros)
        });
        group.finish();
        let r = &c.results()[0];
        // 1 µs per iteration was reported.
        assert!((r.median_ns - 1000.0).abs() < 300.0, "{}", r.median_ns);
    }
}
