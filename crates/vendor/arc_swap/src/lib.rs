//! Offline workspace shim for [`arc-swap`]: an atomically swappable
//! `Arc<T>` used to publish immutable snapshots to lock-free readers.
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the operations the `odburg` snapshot core needs
//! with the same concurrency contract as the real `arc-swap`:
//!
//! * [`ArcSwap::peek`] — wait-free read access to the current value: one
//!   `Acquire` pointer load, **no reference-count traffic and no lock**.
//!   This is the per-forest hot-path operation.
//! * [`ArcSwap::load_full`] — clones out an owning `Arc` of the current
//!   value (one atomic refcount increment), for callers that must pin a
//!   snapshot beyond the borrow of the cell.
//! * [`ArcSwap::store`] — atomically publishes a new value.
//!
//! # The retire-on-store design
//!
//! The hard part of an atomic `Arc` cell is the race between a reader
//! loading the pointer and a writer dropping the last reference to the
//! value just unlinked. The real `arc-swap` solves it with hazard-pointer
//! style debt tracking. This shim instead *retires* replaced values: a
//! [`store`](ArcSwap::store) moves the previous `Arc` onto an internal
//! retire list, where it stays alive until the `ArcSwap` itself is
//! dropped. Every pointer a reader can possibly observe is therefore
//! backed by a strong count owned by the cell for the cell's whole
//! lifetime, which makes `peek` (a plain borrow) and `load_full` (an
//! increment of a provably live count) sound.
//!
//! The cost is memory: one retired `Arc<T>` per `store` call. That is the
//! right trade for snapshot publication — stores happen only when an
//! automaton *grows* (a few hundred times over the life of a JIT, with
//! geometrically decreasing frequency), while reads happen on every
//! compilation. Callers with high-frequency stores should not use this
//! shim.

use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An `Arc<T>` that can be atomically replaced while other threads read
/// it without locks.
///
/// # Examples
///
/// ```
/// use arc_swap::ArcSwap;
/// use std::sync::Arc;
///
/// let cell = ArcSwap::new(Arc::new(1));
/// assert_eq!(*cell.peek(), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(*cell.peek(), 2);
/// let pinned = cell.load_full();
/// cell.store(Arc::new(3));
/// assert_eq!(*pinned, 2); // pinned value survives the store
/// ```
pub struct ArcSwap<T> {
    /// Raw pointer obtained from `Arc::into_raw`; the strong count it
    /// represents is owned by this cell (as "the current value").
    current: AtomicPtr<T>,
    /// Previously published values, kept alive until the cell drops so
    /// that in-flight readers can never observe a freed pointer. Also
    /// serializes concurrent `store` calls.
    retired: Mutex<Vec<Arc<T>>>,
}

// SAFETY: the cell hands out `&T` and `Arc<T>` across threads, so the
// bounds mirror `Arc<T>`'s own Send/Sync requirements.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Borrows the current value: one `Acquire` load, no refcount
    /// traffic, no lock. The borrow is valid for as long as the cell
    /// lives (retired values are never freed before the cell drops), but
    /// it observes the value current *at the time of the call* — a
    /// concurrent [`store`](ArcSwap::store) does not retarget it.
    pub fn peek(&self) -> &T {
        // SAFETY: the pointer was produced by `Arc::into_raw` and the
        // cell owns a strong count for it (as current or retired) until
        // `self` drops; `&self` cannot outlive `self`.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Clones out an owning handle to the current value.
    pub fn load_full(&self) -> Arc<T> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: as in `peek`, the cell owns a strong count for `ptr`
        // until it drops, so the count cannot reach zero concurrently;
        // incrementing before `from_raw` gives this clone its own count.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Atomically publishes `value`; the previous value is retired (kept
    /// alive until the cell drops) so concurrent readers stay valid.
    pub fn store(&self, value: Arc<T>) {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let old = self
            .current
            .swap(Arc::into_raw(value) as *mut T, Ordering::AcqRel);
        // SAFETY: `old` came from `Arc::into_raw` and its strong count is
        // owned by the cell; `from_raw` moves that ownership onto the
        // retire list.
        retired.push(unsafe { Arc::from_raw(old) });
    }

    /// Number of values retired by [`store`](ArcSwap::store) so far.
    pub fn retired_len(&self) -> usize {
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // SAFETY: reclaim the strong count owned as "the current value";
        // the retire list drops its Arcs normally.
        unsafe { drop(Arc::from_raw(self.current.load(Ordering::Acquire))) }
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", self.peek())
            .field("retired", &self.retired_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_and_store() {
        let cell = ArcSwap::new(Arc::new(String::from("a")));
        assert_eq!(cell.peek(), "a");
        cell.store(Arc::new(String::from("b")));
        assert_eq!(cell.peek(), "b");
        assert_eq!(cell.retired_len(), 1);
    }

    #[test]
    fn load_full_survives_store_and_drop() {
        let cell = ArcSwap::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*pinned, vec![1, 2, 3]);
        drop(cell);
        assert_eq!(*pinned, vec![1, 2, 3]);
    }

    #[test]
    fn old_peek_borrow_stays_valid_across_store() {
        let cell = ArcSwap::new(Arc::new(7u64));
        let old: &u64 = cell.peek();
        cell.store(Arc::new(8u64));
        assert_eq!(*old, 7);
        assert_eq!(*cell.peek(), 8);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = Arc::new(ArcSwap::new(Arc::new(0usize)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let v = *cell.peek();
                        assert!(v <= 100);
                        let pinned = cell.load_full();
                        assert!(*pinned <= 100);
                    }
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=100 {
                    cell.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.peek(), 100);
        assert_eq!(cell.retired_len(), 100);
    }
}
