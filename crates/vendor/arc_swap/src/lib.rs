//! Offline workspace shim for [`arc-swap`]: an atomically swappable
//! `Arc<T>` used to publish immutable snapshots to lock-free readers.
//!
//! The build environment of this repository has no access to crates.io,
//! so this crate provides the operations the `odburg` snapshot core needs
//! with the same concurrency contract as the real `arc-swap`:
//!
//! * [`ArcSwap::load`] — wait-free read access to the current value
//!   through a [`Guard`]: one pointer load plus one store into a *hazard
//!   slot*, **no reference-count traffic and no lock** on the common
//!   path. This is the per-forest hot-path operation.
//! * [`ArcSwap::load_full`] — clones out an owning `Arc` of the current
//!   value (one atomic refcount increment), for callers that must pin a
//!   value beyond the borrow of the cell.
//! * [`ArcSwap::store`] — atomically publishes a new value and reclaims
//!   every previously retired value that no reader can still observe.
//!
//! # The retire-and-prune design
//!
//! The hard part of an atomic `Arc` cell is the race between a reader
//! loading the pointer and a writer dropping the last reference to the
//! value just unlinked. The real `arc-swap` solves it with hazard-pointer
//! style debt tracking; this shim uses classic hazard pointers directly:
//!
//! * A [`store`](ArcSwap::store) moves the previous `Arc` onto an
//!   internal retire list, then **prunes** the list: every retired value
//!   that is not published in any hazard slot and whose strong count is 1
//!   (i.e. no caller-held `Arc` clone — no pinned snapshot — still
//!   references it) is dropped on the spot.
//! * A reader's [`Guard`] publishes the pointer it is about to
//!   dereference into one of a fixed pool of hazard slots and then
//!   re-checks that the pointer is still current (the standard
//!   hazard-pointer protocol); a concurrent prune therefore either sees
//!   the slot and keeps the value alive, or the reader observes the newer
//!   pointer and retries. If every slot is taken, the reader falls back
//!   to an owning `Arc` acquired under the same mutex that serializes
//!   pruning — still correct, just not wait-free.
//!
//! The result is bounded memory: the retire list holds only values that a
//! live `Arc` clone (e.g. a pinned snapshot) can still reach, plus at
//! most the handful a concurrent reader is momentarily protecting. A
//! grow-churn workload that publishes thousands of snapshots retains
//! none of them once readers move on — the leak the earlier
//! retire-forever design had is gone.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of hazard slots per cell. More concurrent `load` guards than
/// this degrade to the locked fallback path; they stay correct.
const HAZARD_SLOTS: usize = 64;

/// An `Arc<T>` that can be atomically replaced while other threads read
/// it without locks.
///
/// # Examples
///
/// ```
/// use arc_swap::ArcSwap;
/// use std::sync::Arc;
///
/// let cell = ArcSwap::new(Arc::new(1));
/// assert_eq!(*cell.load(), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(*cell.load(), 2);
/// let pinned = cell.load_full();
/// cell.store(Arc::new(3));
/// assert_eq!(*pinned, 2); // pinned value survives the store
/// ```
pub struct ArcSwap<T> {
    /// Raw pointer obtained from `Arc::into_raw`; the strong count it
    /// represents is owned by this cell (as "the current value").
    current: AtomicPtr<T>,
    /// Previously published values still alive. Also serializes
    /// concurrent `store` calls and the locked `load_full` fallback.
    retired: Mutex<Vec<Arc<T>>>,
    /// Hazard slots: pointers concurrent readers are dereferencing.
    /// Null means free.
    hazards: Box<[AtomicPtr<T>]>,
    /// Total number of `store` calls (monotonic; retired values that were
    /// pruned still count).
    stores: AtomicUsize,
}

// SAFETY: the cell hands out `&T` and `Arc<T>` across threads, so the
// bounds mirror `Arc<T>`'s own Send/Sync requirements.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            retired: Mutex::new(Vec::new()),
            hazards: (0..HAZARD_SLOTS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            stores: AtomicUsize::new(0),
        }
    }

    /// Borrows the current value through a hazard-protected [`Guard`]:
    /// no refcount traffic and no lock on the common path. The guard
    /// observes the value current *at the time of the call* — a
    /// concurrent [`store`](ArcSwap::store) does not retarget it, and the
    /// value cannot be reclaimed while the guard lives.
    pub fn load(&self) -> Guard<'_, T> {
        // Claim a free hazard slot by CAS-ing our candidate pointer into
        // it, then re-check that the pointer is still current (the
        // hazard-pointer protocol: a pruner reads the slots *after* its
        // swap, so either it sees our slot, or we see its new pointer
        // here and retry with that).
        let mut ptr = self.current.load(Ordering::SeqCst);
        for (i, slot) in self.hazards.iter().enumerate() {
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    ptr,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                continue; // slot busy, try the next one
            }
            loop {
                let now = self.current.load(Ordering::SeqCst);
                if now == ptr {
                    return Guard {
                        cell: self,
                        slot: Some(i),
                        fallback: None,
                        ptr,
                    };
                }
                ptr = now;
                // We own the slot; republish and re-check.
                slot.store(ptr, Ordering::SeqCst);
            }
        }
        // Every slot is busy: take the mutex that serializes pruning and
        // clone an owning Arc. While the lock is held no value can be
        // reclaimed, and the Arc keeps it alive afterwards.
        let _lock = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` is the current value and the cell owns a strong
        // count for it; holding `retired` excludes a concurrent prune, so
        // the count cannot reach zero before the increment below.
        let fallback = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        Guard {
            cell: self,
            slot: None,
            fallback: Some(fallback),
            ptr,
        }
    }

    /// Clones out an owning handle to the current value.
    pub fn load_full(&self) -> Arc<T> {
        self.load().to_arc()
    }

    /// Atomically publishes `value`. The previous value is retired, and
    /// the retire list is pruned: retired values that no hazard slot
    /// protects and no caller-held `Arc` references are dropped.
    pub fn store(&self, value: Arc<T>) {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let old = self
            .current
            .swap(Arc::into_raw(value) as *mut T, Ordering::SeqCst);
        self.stores.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `old` came from `Arc::into_raw` and its strong count is
        // owned by the cell; `from_raw` moves that ownership onto the
        // retire list.
        retired.push(unsafe { Arc::from_raw(old) });
        // Prune. The swap above is SeqCst and precedes these slot reads,
        // so any reader whose guard protects a retired value either
        // published its slot before our reads (we keep the value) or will
        // observe the new current pointer on its re-check and retry.
        retired.retain(|arc| {
            let ptr = Arc::as_ptr(arc);
            Arc::strong_count(arc) > 1
                || self
                    .hazards
                    .iter()
                    .any(|slot| std::ptr::eq(slot.load(Ordering::SeqCst), ptr))
        });
    }

    /// Number of retired values still held alive by the cell (bounded by
    /// live caller-held `Arc`s plus transient reader guards).
    pub fn retired_len(&self) -> usize {
        self.retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Total number of [`store`](ArcSwap::store) calls so far (counts
    /// pruned values too).
    pub fn store_count(&self) -> usize {
        self.stores.load(Ordering::Relaxed)
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // SAFETY: reclaim the strong count owned as "the current value";
        // the retire list drops its Arcs normally. `&mut self` proves no
        // guard is alive.
        unsafe { drop(Arc::from_raw(self.current.load(Ordering::Acquire))) }
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", &*self.load())
            .field("retired", &self.retired_len())
            .finish()
    }
}

/// A hazard-protected borrow of an [`ArcSwap`]'s value; see
/// [`ArcSwap::load`]. The value cannot be reclaimed while the guard
/// lives.
pub struct Guard<'a, T> {
    cell: &'a ArcSwap<T>,
    /// Index of the hazard slot this guard owns, or `None` when the
    /// guard holds an owning `Arc` instead (slot-exhaustion fallback).
    slot: Option<usize>,
    fallback: Option<Arc<T>>,
    ptr: *const T,
}

impl<T> Guard<'_, T> {
    /// Clones out an owning `Arc` of the guarded value.
    pub fn to_arc(&self) -> Arc<T> {
        if let Some(arc) = &self.fallback {
            return Arc::clone(arc);
        }
        // SAFETY: the hazard slot keeps the value from being reclaimed,
        // so its strong count is at least 1 for the duration of the
        // increment.
        unsafe {
            Arc::increment_strong_count(self.ptr);
            Arc::from_raw(self.ptr)
        }
    }
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the hazard slot (or the fallback Arc) keeps the
        // pointee alive for the guard's lifetime.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            self.cell.hazards[i].store(std::ptr::null_mut(), Ordering::SeqCst);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Guard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Guard").field(&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_store() {
        let cell = ArcSwap::new(Arc::new(String::from("a")));
        assert_eq!(*cell.load(), "a");
        cell.store(Arc::new(String::from("b")));
        assert_eq!(*cell.load(), "b");
        // The replaced value has no holders: pruned immediately.
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(cell.store_count(), 1);
    }

    #[test]
    fn load_full_survives_store_and_drop() {
        let cell = ArcSwap::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.load_full();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(cell.retired_len(), 1, "pinned value must be retained");
        drop(cell);
        assert_eq!(*pinned, vec![1, 2, 3]);
    }

    #[test]
    fn guard_keeps_value_alive_across_store() {
        let cell = ArcSwap::new(Arc::new(7u64));
        let old = cell.load();
        cell.store(Arc::new(8u64));
        assert_eq!(*old, 7);
        assert_eq!(*cell.load(), 8);
        assert_eq!(cell.retired_len(), 1, "guarded value must be retained");
        drop(old);
        cell.store(Arc::new(9u64));
        assert_eq!(cell.retired_len(), 0, "nothing holds the old values");
    }

    #[test]
    fn dropping_pin_allows_reclamation_on_next_store() {
        let cell = ArcSwap::new(Arc::new(0usize));
        let pinned = cell.load_full();
        cell.store(Arc::new(1));
        assert_eq!(cell.retired_len(), 1);
        drop(pinned);
        cell.store(Arc::new(2));
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(cell.store_count(), 2);
    }

    #[test]
    fn churn_does_not_accumulate_retired_values() {
        let cell = ArcSwap::new(Arc::new(0usize));
        for i in 1..=1000 {
            cell.store(Arc::new(i));
        }
        assert_eq!(cell.store_count(), 1000);
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn slot_exhaustion_falls_back_to_owned_arc() {
        let cell = ArcSwap::new(Arc::new(5u8));
        let guards: Vec<_> = (0..HAZARD_SLOTS + 3).map(|_| cell.load()).collect();
        assert!(guards.iter().all(|g| **g == 5));
        assert!(guards.iter().any(|g| g.fallback.is_some()));
        cell.store(Arc::new(6));
        assert!(guards.iter().all(|g| **g == 5));
        drop(guards);
        cell.store(Arc::new(7));
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = Arc::new(ArcSwap::new(Arc::new(0usize)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let g = cell.load();
                        assert!(*g <= 100);
                        let pinned = cell.load_full();
                        assert!(*pinned <= 100);
                    }
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=100 {
                    cell.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.load(), 100);
        assert_eq!(cell.store_count(), 100);
        // All readers are done: at most nothing is retained.
        cell.store(Arc::new(101));
        assert_eq!(cell.retired_len(), 0);
    }
}
