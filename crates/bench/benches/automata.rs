//! Criterion timing for automaton construction (behind T2/F7): the
//! offline table build each grammar would pay ahead of time, and the
//! cold-start cost of the on-demand automaton labeling its first suite.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use odburg_core::{Labeler, OfflineAutomaton, OfflineConfig, OnDemandAutomaton};
use odburg_workloads::combined_workload;

fn bench_offline_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for grammar in odburg::targets::all() {
        let stripped = Arc::new(
            grammar
                .without_dynamic_rules()
                .expect("fixed fallbacks")
                .normalize(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(grammar.name()),
            &stripped,
            |b, g| {
                b.iter(|| {
                    OfflineAutomaton::build(g.clone(), OfflineConfig::default()).expect("builds")
                })
            },
        );
    }
    group.finish();
}

fn bench_cold_start(c: &mut Criterion) {
    let suite = combined_workload();
    let mut group = c.benchmark_group("ondemand_cold_suite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for name in ["x86ish", "riscish", "sparcish", "jvmish"] {
        let normal = Arc::new(
            odburg::targets::by_name(name)
                .expect("built-in")
                .normalize(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &suite, |b, w| {
            b.iter(|| {
                let mut od = OnDemandAutomaton::new(normal.clone());
                od.label_forest(&w.forest).expect("labels")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline_build, bench_cold_start);
criterion_main!(benches);
