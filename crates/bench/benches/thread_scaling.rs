//! Thread-scaling of the concurrent labeling core: warmed-automaton
//! labeling throughput at 1/2/4/8 threads, snapshot-based
//! [`SharedOnDemand`] vs the coarse-lock [`CoarseSharedOnDemand`]
//! baseline.
//!
//! Each measured iteration is one *parallel round*: every thread labels
//! the whole warm workload once, so the per-iteration element count is
//! `threads × nodes` and the reported throughput is aggregate labeled
//! nodes per second. The acceptance bar for the snapshot core is ≥2×
//! aggregate throughput at 4 threads vs 1 thread.
//!
//! Results are also written to `target/criterion-results.json` (see the
//! criterion shim) for the perf trajectory.
//!
//! Note on hardware: aggregate throughput can only rise with thread
//! count when more than one CPU is available. On a single-core runner
//! (like the CI container this repository is developed in) both
//! implementations flatline at the 1-thread rate — the meaningful
//! single-core readout is that the snapshot path's warm throughput
//! matches the coarse lock's (i.e. lock-freedom costs nothing), while
//! the scaling columns need multi-core hardware to separate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use odburg_core::{CoarseSharedOnDemand, OnDemandAutomaton, SharedOnDemand};
use odburg_ir::Forest;
use odburg_workloads::{combined_workload, random_workload, replicate};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn warm_workload() -> (Arc<odburg_grammar::NormalGrammar>, Forest) {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    // The MiniC suite plus random trees: realistic op mix, and large
    // enough that one round dominates thread start-up cost.
    let mut forest = replicate(&combined_workload().forest, 4);
    forest.append(&random_workload(&normal, 0x7A, 400).forest);
    (normal, forest)
}

/// One parallel round: `threads` workers each label `forest` `iters`
/// times; returns the wall time of the whole round.
fn parallel_round(threads: usize, iters: u64, label: &(dyn Fn() + Sync)) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                for _ in 0..iters {
                    label();
                }
            });
        }
    });
    start.elapsed()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let (normal, forest) = warm_workload();

    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(900));

    for &threads in &THREADS {
        group.throughput(Throughput::Elements((forest.len() * threads) as u64));

        let snapshot = SharedOnDemand::new(OnDemandAutomaton::new(normal.clone()));
        snapshot.label_forest(&forest).expect("warmup");
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    parallel_round(threads, iters, &|| {
                        criterion::black_box(snapshot.label_forest(&forest).expect("labels"));
                    })
                })
            },
        );

        let coarse = CoarseSharedOnDemand::new(OnDemandAutomaton::new(normal.clone()));
        coarse.label_forest(&forest).expect("warmup");
        group.bench_with_input(
            BenchmarkId::new("coarse", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    parallel_round(threads, iters, &|| {
                        criterion::black_box(coarse.label_forest(&forest).expect("labels"));
                    })
                })
            },
        );
    }
    group.finish();

    // Scaling summary: aggregate nodes/sec per configuration, and the
    // snapshot core's speedup over one thread (the ≥2x-at-4-threads
    // criterion) and over the coarse lock.
    let tput = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.group == "thread_scaling" && r.id == id)
            .and_then(|r| r.throughput_per_sec)
            .unwrap_or(0.0)
    };
    println!("\nthread-scaling summary (aggregate labeled nodes/sec):");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>12}",
        "threads", "snapshot", "coarse", "vs coarse", "vs 1-thread"
    );
    let base = tput("snapshot/1");
    for &t in &THREADS {
        let s = tput(&format!("snapshot/{t}"));
        let l = tput(&format!("coarse/{t}"));
        println!(
            "{t:>8} {s:>16.3e} {l:>16.3e} {:>9.2}x {:>11.2}x",
            s / l,
            s / base
        );
    }
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
