//! Criterion timing for the labeling comparisons behind T3/F5: ns per
//! labeling pass of the MiniC suite for every selector.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use odburg_core::{
    Labeler, OfflineAutomaton, OfflineConfig, OfflineLabeler, OnDemandAutomaton, OnDemandConfig,
};
use odburg_dp::{DpLabeler, MacroExpander};
use odburg_workloads::combined_workload;

fn bench_labelers(c: &mut Criterion) {
    let suite = combined_workload();
    let mut group = c.benchmark_group("label_suite");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for name in ["x86ish", "riscish", "jvmish"] {
        let grammar = odburg::targets::by_name(name).expect("built-in");
        let normal = Arc::new(grammar.normalize());
        let stripped = Arc::new(
            grammar
                .without_dynamic_rules()
                .expect("fixed fallbacks")
                .normalize(),
        );
        let offline =
            Arc::new(OfflineAutomaton::build(stripped, OfflineConfig::default()).expect("builds"));

        let mut dp = DpLabeler::new(normal.clone());
        group.bench_with_input(BenchmarkId::new("dp", name), &suite, |b, w| {
            b.iter(|| dp.label_forest(&w.forest).expect("labels"))
        });

        let mut od = OnDemandAutomaton::new(normal.clone());
        od.label_forest(&suite.forest).expect("warmup");
        group.bench_with_input(BenchmarkId::new("ondemand_warm", name), &suite, |b, w| {
            b.iter(|| od.label_forest(&w.forest).expect("labels"))
        });

        let mut odp = OnDemandAutomaton::with_config(
            normal.clone(),
            OnDemandConfig {
                project_children: true,
                ..OnDemandConfig::default()
            },
        );
        odp.label_forest(&suite.forest).expect("warmup");
        group.bench_with_input(
            BenchmarkId::new("ondemand_projected", name),
            &suite,
            |b, w| b.iter(|| odp.label_forest(&w.forest).expect("labels")),
        );

        let mut off = OfflineLabeler::new(offline);
        group.bench_with_input(BenchmarkId::new("offline", name), &suite, |b, w| {
            b.iter(|| off.label_forest(&w.forest).expect("labels"))
        });

        let mut mx = MacroExpander::new(normal.clone());
        group.bench_with_input(BenchmarkId::new("macro", name), &suite, |b, w| {
            b.iter(|| mx.label_forest(&w.forest).expect("labels"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_labelers);
criterion_main!(benches);
