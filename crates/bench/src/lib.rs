//! Shared plumbing for the table/figure binaries in `src/bin/`.
//!
//! Every binary regenerates one table or figure of the reproduced
//! evaluation (see `EXPERIMENTS.md` at the workspace root for the
//! experiment index). Run them with `--release`; the Criterion benches
//! under `benches/` provide statistically solid timings for the same
//! quantities.

use std::sync::Arc;
use std::time::{Duration, Instant};

use odburg_core::telemetry::Histogram;
use odburg_core::{Labeler, OnDemandAutomaton, OnDemandConfig};
use odburg_grammar::NormalGrammar;
use odburg_ir::Forest;

/// The shared quantile helper every bench bin routes through, backed by
/// the telemetry histogram (`odburg_core::telemetry::Histogram`):
/// log-linear buckets with interpolated nearest-rank quantiles, within
/// one sub-bucket width (~1.6% relative) of the exact order statistic.
pub fn quantile(samples: &[Duration], q: f64) -> Duration {
    Histogram::from_durations(samples).quantile_duration(q)
}

/// [`quantile`] in integer microseconds (the serve benches' JSON unit).
pub fn quantile_us(samples: &[Duration], q: f64) -> u128 {
    quantile(samples, q).as_micros()
}

/// Median wall-clock time of `reps` runs of `f` (with one warmup run).
pub fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    f();
    let times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    quantile(&times, 0.5)
}

/// Nanoseconds per node for labeling `forest` with `labeler`, median of
/// `reps`.
pub fn ns_per_node<L: Labeler>(labeler: &mut L, forest: &Forest, reps: usize) -> f64 {
    let t = median_time(reps, || {
        labeler
            .label_forest(forest)
            .expect("benchmark workloads must label");
    });
    t.as_nanos() as f64 / forest.len() as f64
}

/// Work units per node accumulated by one labeling pass.
pub fn work_per_node<L: Labeler>(labeler: &mut L, forest: &Forest) -> f64 {
    labeler.reset_counters();
    labeler
        .label_forest(forest)
        .expect("benchmark workloads must label");
    labeler.counters().work_per_node()
}

/// A warm on-demand automaton: `warmup` labeled once already.
pub fn warm_ondemand(
    grammar: Arc<NormalGrammar>,
    config: OnDemandConfig,
    warmup: &Forest,
) -> OnDemandAutomaton {
    let mut od = OnDemandAutomaton::with_config(grammar, config);
    od.label_forest(warmup).expect("warmup labels");
    od.reset_counters();
    od
}

/// Prints a row of right-aligned cells under the given widths.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{:<width$}", cell, width = widths[0]));
        } else {
            line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
        }
    }
    println!("{line}");
}

/// Prints a rule line matching the widths.
pub fn rule_line(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}
