//! **F7 — Cold start: the price of building the automaton on demand.**
//!
//! A JIT cares about the very first methods it compiles. This figure
//! streams the MiniC suite in chunks and reports, per chunk, the
//! per-node labeling time of (a) a cold on-demand automaton warming up,
//! (b) selection-time dynamic programming, and (c) the offline automaton
//! whose table-construction time is charged up front.
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin figure7_coldstart`

use std::sync::Arc;
use std::time::Instant;

use odburg_bench::{f, row, rule_line};
use odburg_core::{Labeler, OfflineAutomaton, OfflineConfig, OfflineLabeler, OnDemandAutomaton};
use odburg_dp::DpLabeler;
use odburg_frontend::programs;

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());

    // Offline: pay the full construction first.
    let build_start = Instant::now();
    let stripped = Arc::new(
        grammar
            .without_dynamic_rules()
            .expect("fixed fallbacks")
            .normalize(),
    );
    let offline = Arc::new(
        OfflineAutomaton::build(stripped, OfflineConfig::default()).expect("offline builds"),
    );
    let offline_build = build_start.elapsed();

    let mut od = OnDemandAutomaton::new(normal.clone());
    let mut dp = DpLabeler::new(normal.clone());
    let mut off = OfflineLabeler::new(offline);

    let widths = [13, 6, 9, 9, 9, 8, 8];
    println!("F7: per-method labeling time while cold (x86ish, method stream)\n");
    println!("offline table construction charged up front: {offline_build:?}\n");
    row(
        &[
            "method", "nodes", "od.ns/n", "dp.ns/n", "off.ns/n", "misses", "states",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    for program in programs::all() {
        let forest = program.compile().expect("programs compile");
        od.reset_counters();

        let t = Instant::now();
        od.label_forest(&forest).expect("labels");
        let od_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;
        let misses = od.counters().memo_misses;

        let t = Instant::now();
        dp.label_forest(&forest).expect("labels");
        let dp_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;

        let t = Instant::now();
        off.label_forest(&forest).expect("labels");
        let off_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;

        row(
            &[
                program.name.to_owned(),
                forest.len().to_string(),
                f(od_ns, 1),
                f(dp_ns, 1),
                f(off_ns, 1),
                misses.to_string(),
                od.stats().states.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("shape check (paper family): the first methods pay state-construction");
    println!("misses (od between dp and offline, or even above dp briefly); misses");
    println!("collapse within a few methods and od approaches offline speed, without");
    println!("ever paying the offline table-construction delay.");
}
