//! **Serve latency: the long-running server under open-loop load.**
//!
//! The `service_throughput` bench measures closed-loop batches (submit
//! everything, drain once). This one measures what the [`SelectorServer`]
//! redesign exists for: **continuous mixed-target traffic** against a
//! *bounded* queue with deadlines and backpressure. Two phases:
//!
//! * **paced** — an arrival-paced ([`paced_traffic`]) open-loop replay:
//!   jobs are submitted at their scheduled instants whether or not
//!   earlier jobs finished, with a compacting per-target memory budget
//!   so the maintenance quanta run between jobs. Reports p50/p99
//!   submit→complete latency, rejection and deadline rates.
//! * **burst** — an adversarial overload: one large plug job wedges the
//!   single worker, then a burst of zero-deadline jobs slams the 8-slot
//!   queue. Deterministically exercises deadline expiry — and, since
//!   admission purges expired queued jobs before rejecting, asserts
//!   that dead work never converts into spurious `QueueFull`.
//! * **overload_fifo / overload_edf** — goodput under deadline
//!   overload: one worker, a wedging plug, then a flood of loose,
//!   doomed, and tight-deadline jobs submitted in FIFO-worst order.
//!   The FIFO baseline serves arrival order and misses every tight
//!   job; EDF serves deadline order and meets them, while feasibility
//!   shedding refuses the doomed jobs at admission
//!   (`SubmitError::Infeasible`) instead of queueing work that cannot
//!   make its deadline.
//!
//! The shape checks this bench exists for, asserted on every run:
//!
//! * **conservation** — every submitted job is accounted as completed,
//!   typed-rejected, shed, or deadline-expired; zero are lost,
//!   including across the graceful shutdown that ends each phase;
//! * **off-path maintenance** — the budget work shows up in
//!   `maintenance_runs` (worker quanta), proving no compaction ran on
//!   the submit path;
//! * **goodput** — `overload_edf` completes at least as many jobs as
//!   `overload_fifo` and sheds the infeasible ones.
//!
//! Results go to stdout and, as JSON, to `target/serve_latency.json`
//! (CI uploads the artifact and re-asserts the fields).
//!
//! Regenerate with:
//! `cargo run --release -p odburg_bench --bin serve_latency`

use std::sync::Arc;
use std::time::{Duration, Instant};

use odburg::service::{
    JobError, JobHandle, JobOptions, SchedPolicy, SelectorServer, ServerConfig, SubmitError,
};
use odburg_bench::f;
use odburg_core::MemoryBudget;
use odburg_grammar::{NormalGrammar, RuleCost};
use odburg_workloads::paced_traffic;

const SEED: u64 = 0x5E12_7E4C;

/// Deterministic per-job service time of the overload phases' `work`
/// grammar: its dynamic cost sleeps this long once per distinct
/// constant.
const SERVICE_SLICE: Duration = Duration::from_millis(2);

struct PhaseStats {
    phase: &'static str,
    workers: usize,
    queue_cap: usize,
    deadline_ms: Option<u64>,
    submitted: u64,
    accepted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    shed: u64,
    deadline_missed: u64,
    lost: i64,
    p50_us: u128,
    p99_us: u128,
    maintenance_runs: u64,
    wall_ms: u128,
}

/// Waits every handle out and folds the phase accounting together.
fn settle(
    phase: &'static str,
    server: &SelectorServer,
    handles: Vec<JobHandle>,
    submitted: u64,
    started: Instant,
    deadline_ms: Option<u64>,
) -> PhaseStats {
    let mut latencies: Vec<Duration> = Vec::with_capacity(handles.len());
    for handle in handles {
        let done = handle.wait();
        match &done.outcome {
            Ok(_) => latencies.push(done.queued + done.latency),
            Err(JobError::DeadlineExceeded { .. }) => {}
            Err(e) => panic!("{phase}: sampled traffic must label: {e}"),
        }
    }
    let wall_ms = started.elapsed().as_millis();
    let telemetry = Arc::clone(server.telemetry());
    let report = server.shutdown();
    // Conservation recomputed purely from the metrics registry must
    // agree with the server's own report — telemetry is not allowed to
    // be a parallel approximation.
    let totals = telemetry.totals();
    assert!(
        totals.conserved(),
        "{phase}: registry conservation broken: {totals:?}"
    );
    assert_eq!(
        (totals.accepted, totals.rejected, totals.shed),
        (report.accepted, report.rejected, report.shed),
        "{phase}: metrics registry disagrees with the server report"
    );
    let maintenance_runs = report.counters().maintenance_runs;
    let lost = report.accepted as i64 - report.completed as i64 - report.deadline_missed as i64;
    PhaseStats {
        phase,
        workers: report.workers,
        queue_cap: report.queue_cap,
        deadline_ms,
        submitted,
        accepted: report.accepted,
        completed: report.completed,
        failed: report.failed,
        rejected: report.rejected,
        shed: report.shed,
        deadline_missed: report.deadline_missed,
        lost,
        p50_us: odburg_bench::quantile_us(&latencies, 0.50),
        p99_us: odburg_bench::quantile_us(&latencies, 0.99),
        maintenance_runs,
        wall_ms,
    }
}

/// Open-loop replay: arrival-paced mixed traffic against a bounded
/// queue, a deadline, and a compacting per-target budget.
fn paced_phase(grammars: &[(String, Arc<NormalGrammar>)]) -> PhaseStats {
    const JOBS: usize = 240;
    let deadline = Duration::from_millis(250);
    let refs: Vec<(&str, &NormalGrammar)> = grammars
        .iter()
        .map(|(n, g)| (n.as_str(), g.as_ref()))
        .collect();
    let traffic = paced_traffic(&refs, SEED, JOBS, Duration::from_micros(300));

    let server = SelectorServer::with_builtin_targets(ServerConfig {
        workers: 2,
        queue_cap: 64,
        memory_budget: Some(MemoryBudget::compact(128 * 1024, 0.5)),
        ..ServerConfig::default()
    });
    let options = JobOptions {
        deadline: Some(deadline),
        ..JobOptions::default()
    };
    let started = Instant::now();
    let mut handles = Vec::with_capacity(JOBS);
    let mut submitted = 0u64;
    for paced in traffic {
        if let Some(wait) = paced.at.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        submitted += 1;
        match server.try_submit_with(&paced.job.target, paced.job.forest, options) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::QueueFull { .. }) => {} // typed-rejected, tallied by the server
            Err(e) => panic!("paced: unexpected rejection: {e}"),
        }
    }
    settle(
        "paced",
        &server,
        handles,
        submitted,
        started,
        Some(deadline.as_millis() as u64),
    )
}

/// Adversarial overload: a plug job wedges the single worker, then a
/// zero-deadline burst slams the tiny queue. Admission purges expired
/// queued jobs before rejecting, so the already-dead burst jobs are
/// delivered as `DeadlineExceeded` and never convert into spurious
/// `QueueFull` — the whole burst is accepted and expires, none of it
/// is rejected.
fn burst_phase() -> PhaseStats {
    const BURST: usize = 200;
    let server = SelectorServer::with_builtin_targets(ServerConfig {
        workers: 1,
        queue_cap: 8,
        ..ServerConfig::default()
    });
    // The plug: a big MiniC workload, long enough that the burst below
    // is fully submitted while the worker is still labeling it.
    let suite = odburg::workloads::combined_workload();
    let plug = odburg::workloads::replicate(&suite.forest, 50);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(BURST + 1);
    handles.push(
        server
            .try_submit("x86ish", plug)
            .expect("an empty queue accepts the plug"),
    );
    let mut submitted = 1u64;
    let expired = JobOptions {
        deadline: Some(Duration::ZERO),
        ..JobOptions::default()
    };
    for i in 0..BURST {
        let mut forest = odburg_ir::Forest::new();
        let root =
            odburg_ir::parse_sexpr(&mut forest, &format!("(AddI4 (ConstI4 {i}) (ConstI4 1))"))
                .expect("burst tree parses");
        forest.add_root(root);
        submitted += 1;
        match server.try_submit_with("x86ish", forest, expired) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::QueueFull { .. }) => {}
            Err(e) => panic!("burst: unexpected rejection: {e}"),
        }
    }
    settle("burst", &server, handles, submitted, started, Some(0))
}

/// A grammar whose dynamic cost sleeps [`SERVICE_SLICE`] once per
/// distinct constant, so every job with a fresh constant has a known,
/// deterministic service time — the per-target EWMA converges to it
/// within the warmup jobs.
fn work_grammar() -> Arc<NormalGrammar> {
    let mut g = odburg::grammar::parse_grammar(
        r#"
        %grammar work
        %start stmt
        %dyncost sleep
        reg: ConstI8 [sleep]
        reg: AddI8(reg, reg) (1)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .expect("work grammar parses");
    g.bind_dyncost(
        "sleep",
        Arc::new(|forest: &odburg_ir::Forest, node: odburg_ir::NodeId| {
            std::thread::sleep(SERVICE_SLICE);
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            RuleCost::Finite((v.unsigned_abs() % 911) as u16)
        }),
    )
    .expect("dyncost binds");
    Arc::new(g.normalize())
}

/// One `work` job: a fresh constant per call keeps minting signatures,
/// so its dyncost (and sleep) is evaluated once per job.
fn work_forest(k: i64) -> odburg_ir::Forest {
    let mut f = odburg_ir::Forest::new();
    let root = odburg_ir::parse_sexpr(
        &mut f,
        &format!("(StoreI8 (ConstI8 {k}) (ConstI8 {}))", k + 1),
    )
    .expect("work tree parses");
    f.add_root(root);
    f
}

/// Goodput under deadline overload, run once per scheduling policy.
///
/// One worker; a five-constant plug (~5 × [`SERVICE_SLICE`]) wedges it
/// while the flood is submitted in FIFO-worst order: 60 *loose* jobs
/// (2 s deadlines), then 40 *doomed* jobs (8 ms deadlines the plug
/// alone outlasts), then 16 *tight* jobs (250 ms deadlines). FIFO
/// serves arrival order, so every tight job waits behind ~400 ms of
/// loose work and misses. EDF serves deadline order and meets every
/// tight job; with shedding on, the doomed jobs behind other doomed
/// work are refused at admission (`Infeasible`) once the per-target
/// EWMA says the earlier-deadline queue already blows their 8 ms.
fn overload_phase(phase: &'static str, sched: SchedPolicy, shed_infeasible: bool) -> PhaseStats {
    const LOOSE: usize = 60;
    const DOOMED: usize = 40;
    const TIGHT: usize = 16;
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        queue_cap: 512,
        sched,
        shed_infeasible,
        ..ServerConfig::default()
    });
    server
        .register_normal("work", work_grammar())
        .expect("work grammar registers");

    let started = Instant::now();
    let mut submitted = 0u64;
    // Prime the per-target service-time EWMA with undeadlined jobs,
    // fully drained before the overload starts.
    for i in 0..4 {
        submitted += 1;
        let handle = server
            .try_submit("work", work_forest(9_000_000 + 2 * i))
            .expect("an idle server accepts warmup");
        let done = handle.wait();
        assert!(done.outcome.is_ok(), "{phase}: warmup must label");
    }

    // The plug: five fresh constants wedge the worker long enough that
    // the whole flood is submitted (and the doomed deadlines expire)
    // while it labels.
    let mut handles = Vec::with_capacity(1 + LOOSE + DOOMED + TIGHT);
    let mut plug = odburg_ir::Forest::new();
    let root = odburg_ir::parse_sexpr(
        &mut plug,
        "(StoreI8 (AddI8 (AddI8 (ConstI8 9100000) (ConstI8 9100001)) \
         (AddI8 (ConstI8 9100002) (ConstI8 9100003))) (ConstI8 9100004))",
    )
    .expect("plug tree parses");
    plug.add_root(root);
    submitted += 1;
    handles.push(
        server
            .try_submit("work", plug)
            .expect("an empty queue accepts the plug"),
    );

    let classes: [(usize, i64, Duration); 3] = [
        (LOOSE, 1_000_000, Duration::from_secs(2)),
        (DOOMED, 2_000_000, Duration::from_millis(8)),
        (TIGHT, 3_000_000, Duration::from_millis(250)),
    ];
    for (count, base, deadline) in classes {
        let options = JobOptions {
            deadline: Some(deadline),
            ..JobOptions::default()
        };
        for i in 0..count {
            submitted += 1;
            match server.try_submit_with("work", work_forest(base + 2 * i as i64), options) {
                Ok(handle) => handles.push(handle),
                Err(SubmitError::Infeasible { .. }) => {} // shed, tallied by the server
                Err(e) => panic!("{phase}: unexpected rejection: {e}"),
            }
        }
    }
    settle(phase, &server, handles, submitted, started, None)
}

fn main() {
    let grammars: Vec<(String, Arc<NormalGrammar>)> = odburg::targets::all()
        .into_iter()
        .map(|g| (g.name().to_owned(), Arc::new(g.normalize())))
        .collect();

    let phases = [
        paced_phase(&grammars),
        burst_phase(),
        overload_phase("overload_fifo", SchedPolicy::Fifo, false),
        overload_phase("overload_edf", SchedPolicy::Edf, true),
    ];

    println!("Serve latency: bounded queue, deadlines, backpressure\n");
    for p in &phases {
        let rate = |n: u64| {
            if p.submitted == 0 {
                0.0
            } else {
                n as f64 / p.submitted as f64
            }
        };
        println!(
            "{:<13} workers={} cap={} deadline={:?}ms: {} submitted = {} completed \
             ({} failed) + {} rejected + {} shed + {} deadline-missed (lost {}), \
             p50 {}us p99 {}us, {} maintenance quanta, {} ms",
            p.phase,
            p.workers,
            p.queue_cap,
            p.deadline_ms.unwrap_or(0),
            p.submitted,
            p.completed,
            p.failed,
            p.rejected,
            p.shed,
            p.deadline_missed,
            p.lost,
            p.p50_us,
            p.p99_us,
            p.maintenance_runs,
            p.wall_ms,
        );
        println!(
            "       rejection rate {}, deadline rate {}",
            f(rate(p.rejected), 3),
            f(rate(p.deadline_missed), 3)
        );
    }

    let mut json = String::from("{\n  \"bench\": \"serve_latency\",\n");
    json.push_str(&format!("  \"seed\": {SEED},\n  \"phases\": [\n"));
    for (i, p) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"workers\": {}, \"queue_cap\": {}, \
             \"deadline_ms\": {}, \"submitted\": {}, \"accepted\": {}, \
             \"completed\": {}, \"failed\": {}, \"rejected\": {}, \"shed\": {}, \
             \"deadline_missed\": {}, \"lost\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"rejection_rate\": {:.4}, \"deadline_rate\": {:.4}, \
             \"maintenance_runs\": {}, \"wall_ms\": {}}}{}\n",
            p.phase,
            p.workers,
            p.queue_cap,
            p.deadline_ms.unwrap_or(0),
            p.submitted,
            p.accepted,
            p.completed,
            p.failed,
            p.rejected,
            p.shed,
            p.deadline_missed,
            p.lost,
            p.p50_us,
            p.p99_us,
            p.rejected as f64 / p.submitted.max(1) as f64,
            p.deadline_missed as f64 / p.submitted.max(1) as f64,
            p.maintenance_runs,
            p.wall_ms,
            if i + 1 == phases.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target/serve_latency.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
    }

    // The shape checks this bench exists for.
    for p in &phases {
        assert_eq!(p.lost, 0, "{}: jobs were lost", p.phase);
        assert_eq!(
            p.submitted,
            p.accepted + p.rejected + p.shed,
            "{}: submissions unaccounted",
            p.phase
        );
        assert_eq!(p.failed, 0, "{}: sampled traffic must label", p.phase);
    }
    let paced = &phases[0];
    assert!(paced.completed > 0, "paced: nothing completed");
    assert!(
        paced.maintenance_runs > 0,
        "paced: budget enforcement must run in worker quanta"
    );
    let burst = &phases[1];
    assert_eq!(
        burst.rejected, 0,
        "burst: expired queued jobs must be purged at admission, not converted into QueueFull"
    );
    assert!(
        burst.deadline_missed > 0,
        "burst: zero-deadline jobs queued behind the plug must expire"
    );
    let fifo = &phases[2];
    let edf = &phases[3];
    assert_eq!(fifo.shed, 0, "overload_fifo: the baseline must not shed");
    assert!(
        edf.shed > 0,
        "overload_edf: doomed jobs must be shed at admission"
    );
    assert!(
        edf.completed >= fifo.completed,
        "overload: EDF+shedding goodput ({}) must be at least the FIFO baseline ({})",
        edf.completed,
        fifo.completed
    );
    assert!(
        edf.deadline_missed <= fifo.deadline_missed,
        "overload: EDF must not miss more deadlines ({}) than FIFO ({})",
        edf.deadline_missed,
        fifo.deadline_missed
    );
    println!(
        "ok: conservation holds in every phase; backpressure, shedding, and deadlines are \
         typed outcomes, and EDF+shedding goodput >= FIFO under overload"
    );
}
