//! **Serve latency: the long-running server under open-loop load.**
//!
//! The `service_throughput` bench measures closed-loop batches (submit
//! everything, drain once). This one measures what the [`SelectorServer`]
//! redesign exists for: **continuous mixed-target traffic** against a
//! *bounded* queue with deadlines and backpressure. Two phases:
//!
//! * **paced** — an arrival-paced ([`paced_traffic`]) open-loop replay:
//!   jobs are submitted at their scheduled instants whether or not
//!   earlier jobs finished, with a compacting per-target memory budget
//!   so the maintenance quanta run between jobs. Reports p50/p99
//!   submit→complete latency, rejection and deadline rates.
//! * **burst** — an adversarial overload: one large plug job wedges the
//!   single worker, then a burst of zero-deadline jobs slams the 8-slot
//!   queue. Deterministically exercises both typed failure modes:
//!   `QueueFull` rejections (queue bound) and `DeadlineExceeded`
//!   completions (expired while queued).
//!
//! The shape checks this bench exists for, asserted on every run:
//!
//! * **conservation** — every submitted job is accounted as completed,
//!   typed-rejected, or deadline-expired; zero are lost, including
//!   across the graceful shutdown that ends each phase;
//! * **off-path maintenance** — the budget work shows up in
//!   `maintenance_runs` (worker quanta), proving no compaction ran on
//!   the submit path.
//!
//! Results go to stdout and, as JSON, to `target/serve_latency.json`
//! (CI uploads the artifact and re-asserts the fields).
//!
//! Regenerate with:
//! `cargo run --release -p odburg_bench --bin serve_latency`

use std::sync::Arc;
use std::time::{Duration, Instant};

use odburg::service::{JobError, JobHandle, JobOptions, SelectorServer, ServerConfig, SubmitError};
use odburg_bench::f;
use odburg_core::MemoryBudget;
use odburg_grammar::NormalGrammar;
use odburg_workloads::paced_traffic;

const SEED: u64 = 0x5E12_7E4C;

struct PhaseStats {
    phase: &'static str,
    workers: usize,
    queue_cap: usize,
    deadline_ms: Option<u64>,
    submitted: u64,
    accepted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    deadline_missed: u64,
    lost: i64,
    p50_us: u128,
    p99_us: u128,
    maintenance_runs: u64,
    wall_ms: u128,
}

fn percentile(sorted: &[Duration], q: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize].as_micros()
}

/// Waits every handle out and folds the phase accounting together.
fn settle(
    phase: &'static str,
    server: &SelectorServer,
    handles: Vec<JobHandle>,
    submitted: u64,
    started: Instant,
    deadline_ms: Option<u64>,
) -> PhaseStats {
    let mut latencies: Vec<Duration> = Vec::with_capacity(handles.len());
    for handle in handles {
        let done = handle.wait();
        match &done.outcome {
            Ok(_) => latencies.push(done.queued + done.latency),
            Err(JobError::DeadlineExceeded { .. }) => {}
            Err(e) => panic!("{phase}: sampled traffic must label: {e}"),
        }
    }
    let wall_ms = started.elapsed().as_millis();
    let report = server.shutdown();
    latencies.sort_unstable();
    let maintenance_runs = report.counters().maintenance_runs;
    let lost = report.accepted as i64 - report.completed as i64 - report.deadline_missed as i64;
    PhaseStats {
        phase,
        workers: report.workers,
        queue_cap: report.queue_cap,
        deadline_ms,
        submitted,
        accepted: report.accepted,
        completed: report.completed,
        failed: report.failed,
        rejected: report.rejected,
        deadline_missed: report.deadline_missed,
        lost,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        maintenance_runs,
        wall_ms,
    }
}

/// Open-loop replay: arrival-paced mixed traffic against a bounded
/// queue, a deadline, and a compacting per-target budget.
fn paced_phase(grammars: &[(String, Arc<NormalGrammar>)]) -> PhaseStats {
    const JOBS: usize = 240;
    let deadline = Duration::from_millis(250);
    let refs: Vec<(&str, &NormalGrammar)> = grammars
        .iter()
        .map(|(n, g)| (n.as_str(), g.as_ref()))
        .collect();
    let traffic = paced_traffic(&refs, SEED, JOBS, Duration::from_micros(300));

    let server = SelectorServer::with_builtin_targets(ServerConfig {
        workers: 2,
        queue_cap: 64,
        memory_budget: Some(MemoryBudget::compact(128 * 1024, 0.5)),
        ..ServerConfig::default()
    });
    let options = JobOptions {
        deadline: Some(deadline),
        ..JobOptions::default()
    };
    let started = Instant::now();
    let mut handles = Vec::with_capacity(JOBS);
    let mut submitted = 0u64;
    for paced in traffic {
        if let Some(wait) = paced.at.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        submitted += 1;
        match server.try_submit_with(&paced.job.target, paced.job.forest, options) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::QueueFull { .. }) => {} // typed-rejected, tallied by the server
            Err(e) => panic!("paced: unexpected rejection: {e}"),
        }
    }
    settle(
        "paced",
        &server,
        handles,
        submitted,
        started,
        Some(deadline.as_millis() as u64),
    )
}

/// Adversarial overload: a plug job wedges the single worker, then a
/// zero-deadline burst slams the tiny queue.
fn burst_phase() -> PhaseStats {
    const BURST: usize = 200;
    let server = SelectorServer::with_builtin_targets(ServerConfig {
        workers: 1,
        queue_cap: 8,
        ..ServerConfig::default()
    });
    // The plug: a big MiniC workload, long enough that the burst below
    // is fully submitted while the worker is still labeling it.
    let suite = odburg::workloads::combined_workload();
    let plug = odburg::workloads::replicate(&suite.forest, 50);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(BURST + 1);
    handles.push(
        server
            .try_submit("x86ish", plug)
            .expect("an empty queue accepts the plug"),
    );
    let mut submitted = 1u64;
    let expired = JobOptions {
        deadline: Some(Duration::ZERO),
        ..JobOptions::default()
    };
    for i in 0..BURST {
        let mut forest = odburg_ir::Forest::new();
        let root =
            odburg_ir::parse_sexpr(&mut forest, &format!("(AddI4 (ConstI4 {i}) (ConstI4 1))"))
                .expect("burst tree parses");
        forest.add_root(root);
        submitted += 1;
        match server.try_submit_with("x86ish", forest, expired) {
            Ok(handle) => handles.push(handle),
            Err(SubmitError::QueueFull { .. }) => {}
            Err(e) => panic!("burst: unexpected rejection: {e}"),
        }
    }
    settle("burst", &server, handles, submitted, started, Some(0))
}

fn main() {
    let grammars: Vec<(String, Arc<NormalGrammar>)> = odburg::targets::all()
        .into_iter()
        .map(|g| (g.name().to_owned(), Arc::new(g.normalize())))
        .collect();

    let phases = [paced_phase(&grammars), burst_phase()];

    println!("Serve latency: bounded queue, deadlines, backpressure\n");
    for p in &phases {
        let rate = |n: u64| {
            if p.submitted == 0 {
                0.0
            } else {
                n as f64 / p.submitted as f64
            }
        };
        println!(
            "{:<6} workers={} cap={} deadline={:?}ms: {} submitted = {} completed \
             ({} failed) + {} rejected + {} deadline-missed (lost {}), \
             p50 {}us p99 {}us, {} maintenance quanta, {} ms",
            p.phase,
            p.workers,
            p.queue_cap,
            p.deadline_ms.unwrap_or(0),
            p.submitted,
            p.completed,
            p.failed,
            p.rejected,
            p.deadline_missed,
            p.lost,
            p.p50_us,
            p.p99_us,
            p.maintenance_runs,
            p.wall_ms,
        );
        println!(
            "       rejection rate {}, deadline rate {}",
            f(rate(p.rejected), 3),
            f(rate(p.deadline_missed), 3)
        );
    }

    let mut json = String::from("{\n  \"bench\": \"serve_latency\",\n");
    json.push_str(&format!("  \"seed\": {SEED},\n  \"phases\": [\n"));
    for (i, p) in phases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"workers\": {}, \"queue_cap\": {}, \
             \"deadline_ms\": {}, \"submitted\": {}, \"accepted\": {}, \
             \"completed\": {}, \"failed\": {}, \"rejected\": {}, \
             \"deadline_missed\": {}, \"lost\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"rejection_rate\": {:.4}, \"deadline_rate\": {:.4}, \
             \"maintenance_runs\": {}, \"wall_ms\": {}}}{}\n",
            p.phase,
            p.workers,
            p.queue_cap,
            p.deadline_ms.unwrap_or(0),
            p.submitted,
            p.accepted,
            p.completed,
            p.failed,
            p.rejected,
            p.deadline_missed,
            p.lost,
            p.p50_us,
            p.p99_us,
            p.rejected as f64 / p.submitted.max(1) as f64,
            p.deadline_missed as f64 / p.submitted.max(1) as f64,
            p.maintenance_runs,
            p.wall_ms,
            if i + 1 == phases.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target/serve_latency.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
    }

    // The shape checks this bench exists for.
    for p in &phases {
        assert_eq!(p.lost, 0, "{}: jobs were lost", p.phase);
        assert_eq!(
            p.submitted,
            p.accepted + p.rejected,
            "{}: submissions unaccounted",
            p.phase
        );
        assert_eq!(p.failed, 0, "{}: sampled traffic must label", p.phase);
    }
    let paced = &phases[0];
    assert!(paced.completed > 0, "paced: nothing completed");
    assert!(
        paced.maintenance_runs > 0,
        "paced: budget enforcement must run in worker quanta"
    );
    let burst = &phases[1];
    assert!(
        burst.rejected > 0,
        "burst: an 8-slot queue under a plug must reject"
    );
    assert!(
        burst.deadline_missed > 0,
        "burst: zero-deadline jobs queued behind the plug must expire"
    );
    println!(
        "ok: conservation holds in both phases; backpressure and deadlines are typed outcomes"
    );
}
