//! **Cluster smoke: 3 shards, table shipping, one kill, nothing lost.**
//!
//! The cluster tier's CI gate, exercising every claim the
//! [`odburg::cluster`] module makes on one fixed-seed mixed-traffic
//! stream:
//!
//! 1. **Differential** — every job routed through the 3-shard cluster
//!    reduces bit-identically to a fresh single-process [`DpLabeler`]
//!    oracle.
//! 2. **Kill** — a shard is killed with jobs in flight; every accepted
//!    job still resolves (`lost_accepted_on_kill == 0`) and the killed
//!    incarnation's own report conserves.
//! 3. **Warm start** — the shard restarts, warm-starts from tables
//!    shipped by the surviving writers, and serves pinned warm traffic
//!    with **zero** grow-path entries (`states_built == 0`,
//!    `memo_misses == 0`).
//! 4. **Conservation from telemetry alone** — `submitted == accepted +
//!    rejected + shed` summed over every shard incarnation's telemetry
//!    registry, with no server tally feeding the check.
//!
//! Results go to stdout and, as JSON, to `target/cluster_smoke.json`
//! (CI uploads the artifact and re-asserts the invariants from it).
//!
//! Regenerate with:
//! `cargo run --release -p odburg_bench --bin cluster_smoke`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use odburg::prelude::*;
use odburg_workloads::{builtin_traffic, TrafficJob};

const SEED: u64 = 0xC0FFEE;
const WARM_JOBS: usize = 90;
const KILL_JOBS: usize = 30;

/// The DP oracle's reduction of one job: a fresh dynamic-programming
/// labeler per target, no automata, no sharing.
fn oracle_reduce(
    oracles: &mut HashMap<String, (Arc<NormalGrammar>, DpLabeler)>,
    job: &TrafficJob,
) -> Reduction {
    let (normal, dp) = oracles.entry(job.target.clone()).or_insert_with(|| {
        let grammar = odburg::targets::by_name(&job.target).expect("builtin target");
        let normal = Arc::new(grammar.normalize());
        (Arc::clone(&normal), DpLabeler::new(normal))
    });
    let labeling = dp.label_forest(&job.forest).expect("oracle labels");
    reduce_forest(&job.forest, normal, &labeling).expect("oracle reduces")
}

fn assert_matches_oracle(
    oracles: &mut HashMap<String, (Arc<NormalGrammar>, DpLabeler)>,
    job: &TrafficJob,
    done: &CompletedJob,
) {
    let expected = oracle_reduce(oracles, job);
    let got = done.reduce().expect("cluster job reduces");
    assert_eq!(
        got.instructions, expected.instructions,
        "instructions diverge from the DP oracle on {}",
        job.target
    );
    assert_eq!(
        got.total_cost, expected.total_cost,
        "cost diverges from the DP oracle on {}",
        job.target
    );
}

fn main() {
    let cluster = ShardCluster::with_builtin_targets(ClusterConfig {
        shards: 3,
        vnodes: 64,
        server: ServerConfig {
            workers: 2,
            queue_cap: 4096,
            ..ServerConfig::default()
        },
    });
    let mut oracles = HashMap::new();

    // Phase 1: warm the writers on mixed traffic, every job checked
    // against the oracle.
    let warm = builtin_traffic(SEED, WARM_JOBS);
    let mut pending = Vec::new();
    for job in &warm {
        pending.push(
            cluster
                .submit(&job.target, job.forest.clone())
                .expect("uncontended submit"),
        );
    }
    let mut oracle_matches = 0usize;
    for (job, sub) in warm.iter().zip(pending) {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
        oracle_matches += 1;
    }
    println!("phase 1: {oracle_matches}/{WARM_JOBS} warm jobs match the DP oracle");

    // Broadcast the warm tables before anything fails: a writer
    // failover can only be seamless if the replicas already hold what
    // the writer learned.
    for (target, result) in cluster.ship_all() {
        result.unwrap_or_else(|e| panic!("shipping {target} failed: {e}"));
    }

    // Phase 2: kill the busiest writer with jobs in flight. Every
    // accepted job must still resolve — the kill drains the queue.
    let victim = cluster
        .writer(&warm[0].target)
        .expect("registered target")
        .shard;
    let kill_traffic = builtin_traffic(SEED ^ 0x51, KILL_JOBS);
    let mut in_flight = Vec::new();
    for job in &kill_traffic {
        in_flight.push((
            job,
            cluster
                .submit(&job.target, job.forest.clone())
                .expect("uncontended submit"),
        ));
    }
    let in_flight_at_kill = in_flight.len();
    let killed = cluster.kill_shard(victim).expect("victim was alive");
    let lost_accepted_on_kill = killed.accepted - killed.completed - killed.deadline_missed;
    let mut resolved_after_kill = 0usize;
    for (job, sub) in in_flight {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
        resolved_after_kill += 1;
    }
    assert_eq!(
        lost_accepted_on_kill, 0,
        "killing shard {victim} dropped accepted jobs: {killed:?}"
    );
    assert_eq!(resolved_after_kill, in_flight_at_kill);
    println!(
        "phase 2: killed shard {victim} with {in_flight_at_kill} jobs in flight; \
         all resolved, {lost_accepted_on_kill} accepted jobs lost"
    );

    // Phase 3: restart the victim; it warm-starts from tables shipped
    // by the surviving writers, then serves pinned warm traffic.
    let warmed = cluster.restart_shard(victim).expect("restart ships");
    assert!(warmed > 0, "restart shipped no tables");
    let mut replayed = 0usize;
    for job in &warm {
        let lease = cluster.writer(&job.target).expect("registered");
        if lease.shard == victim {
            continue; // pinning to the writer would not prove shipping
        }
        cluster.pin(&job.target, victim).expect("registered");
        let sub = cluster
            .submit(&job.target, job.forest.clone())
            .expect("pinned submit");
        assert_eq!(sub.shard, victim, "pin must route to the restarted shard");
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
        replayed += 1;
    }
    assert!(replayed > 0, "no warm traffic reached the restarted shard");
    println!(
        "phase 3: restarted shard {victim} warm-started {warmed} targets, replayed {replayed} jobs"
    );

    let report = cluster.shutdown();
    assert!(report.conserved(), "cluster conservation: {report:?}");

    // The restarted incarnation served the pinned replay; its grow-path
    // counters prove it answered from shipped tables.
    let restarted = report
        .per_shard
        .iter()
        .rfind(|s| s.shard == victim && !s.killed)
        .expect("restarted incarnation reported");
    let counters = restarted.report.counters();

    // Conservation from telemetry alone: no server tally feeds this.
    let mut totals = JobCounts::default();
    for (_, telemetry) in cluster.shard_telemetries() {
        totals.merge(&telemetry.totals());
    }
    let telemetry_conserved = totals.conserved();
    assert!(telemetry_conserved, "telemetry conservation: {totals:?}");
    assert_eq!(
        (totals.submitted, totals.rejected, totals.shed),
        (report.submitted, report.rejected, report.shed),
        "telemetry disagrees with the cluster report"
    );
    println!(
        "conservation (telemetry alone): submitted {} == accepted {} + rejected {} + shed {}",
        totals.submitted, totals.accepted, totals.rejected, totals.shed
    );
    println!(
        "replica grow path on warm traffic: {} states built, {} memo misses",
        counters.states_built, counters.memo_misses
    );

    let mut json = String::from("{\n  \"bench\": \"cluster_smoke\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"shards\": 3,");
    let _ = writeln!(json, "  \"warm_jobs\": {WARM_JOBS},");
    let _ = writeln!(json, "  \"kill_jobs\": {KILL_JOBS},");
    let _ = writeln!(
        json,
        "  \"oracle_matches\": {},",
        oracle_matches + resolved_after_kill + replayed
    );
    let _ = writeln!(json, "  \"submitted\": {},", report.submitted);
    let _ = writeln!(json, "  \"accepted\": {},", report.accepted);
    let _ = writeln!(json, "  \"completed\": {},", report.completed);
    let _ = writeln!(json, "  \"rejected\": {},", report.rejected);
    let _ = writeln!(json, "  \"shed\": {},", report.shed);
    let _ = writeln!(json, "  \"deadline_missed\": {},", report.deadline_missed);
    let _ = writeln!(json, "  \"telemetry_submitted\": {},", totals.submitted);
    let _ = writeln!(json, "  \"telemetry_accepted\": {},", totals.accepted);
    let _ = writeln!(json, "  \"telemetry_rejected\": {},", totals.rejected);
    let _ = writeln!(json, "  \"telemetry_shed\": {},", totals.shed);
    let _ = writeln!(json, "  \"telemetry_conserved\": {telemetry_conserved},");
    let _ = writeln!(json, "  \"killed_shard\": {victim},");
    let _ = writeln!(json, "  \"in_flight_at_kill\": {in_flight_at_kill},");
    let _ = writeln!(json, "  \"resolved_after_kill\": {resolved_after_kill},");
    let _ = writeln!(
        json,
        "  \"lost_accepted_on_kill\": {lost_accepted_on_kill},"
    );
    let _ = writeln!(json, "  \"restart_warmed_targets\": {warmed},");
    let _ = writeln!(json, "  \"replayed_warm_jobs\": {replayed},");
    let _ = writeln!(
        json,
        "  \"replica_states_built\": {},",
        counters.states_built
    );
    let _ = writeln!(json, "  \"replica_memo_misses\": {},", counters.memo_misses);
    let _ = writeln!(json, "  \"shipments\": {},", report.shipments);
    let _ = writeln!(json, "  \"ship_rejects\": {},", report.ship_rejects);
    let _ = writeln!(json, "  \"reroutes\": {},", report.reroutes);
    let _ = writeln!(json, "  \"writer_elections\": {}", report.writer_elections);
    json.push_str("}\n");
    let path = std::path::Path::new("target/cluster_smoke.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
    }

    // The three checks this smoke exists for, stated last and loud.
    assert_eq!(
        counters.states_built, 0,
        "restarted shard entered the grow path on warm traffic"
    );
    assert_eq!(
        counters.memo_misses, 0,
        "restarted shard missed its shipped tables on warm traffic"
    );
    assert_eq!(lost_accepted_on_kill, 0);
    println!(
        "ok: oracle-identical, zero lost accepted jobs, zero grow-path entries on the replica"
    );
}
