//! **A9 — Ablation of on-demand design choices.**
//!
//! Two knobs DESIGN.md calls out:
//!
//! 1. **Transition-key projection** — projecting child states onto the
//!    operand nonterminals of the operator before forming the key (the
//!    offline automaton's representer compression, applied lazily). More
//!    sharing, but an extra cache probe per child.
//! 2. **Automaton persistence** — keeping one automaton across the whole
//!    method stream (the paper's deployment) vs resetting it per method
//!    (every method pays warmup again).
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin ablation9_design`

use std::sync::Arc;

use odburg_bench::{f, median_time, row, rule_line};
use odburg_core::{Labeler, OnDemandAutomaton, OnDemandConfig};
use odburg_frontend::programs;
use odburg_workloads::{combined_workload, random_workload, replicate};

const REPS: usize = 7;

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let suite = combined_workload();
    let mut mixed = replicate(&suite.forest, 5);
    mixed.append(&random_workload(&normal, 0xA9, 1000).forest);

    println!("A9.1: transition-key projection (x86ish, suite x5 + random trees)\n");
    let widths = [11, 8, 9, 7, 9, 9];
    row(
        &["key", "states", "trans", "hit%", "ns/node", "bytes"].map(String::from),
        &widths,
    );
    rule_line(&widths);
    for (label, project) in [("direct", false), ("projected", true)] {
        let config = OnDemandConfig {
            project_children: project,
            ..OnDemandConfig::default()
        };
        let mut od = OnDemandAutomaton::with_config(normal.clone(), config);
        od.label_forest(&mixed).expect("labels");
        let c = od.counters();
        let hit = 100.0 * c.memo_hits as f64 / (c.memo_hits + c.memo_misses) as f64;
        let stats = od.stats();
        // Warm timing.
        od.reset_counters();
        let t = median_time(REPS, || {
            od.label_forest(&mixed).expect("labels");
        });
        row(
            &[
                label.to_owned(),
                stats.states.to_string(),
                stats.transitions.to_string(),
                f(hit, 2),
                f(t.as_nanos() as f64 / mixed.len() as f64, 1),
                stats.bytes.to_string(),
            ],
            &widths,
        );
    }

    println!("\nA9.2: persistent automaton vs per-method reset (method stream x20)\n");
    let widths = [11, 9, 9, 9];
    row(
        &["automaton", "misses", "states*", "ns/node"].map(String::from),
        &widths,
    );
    rule_line(&widths);

    // Persistent: one automaton across the stream.
    let stream: Vec<_> = (0..20)
        .flat_map(|_| programs::all())
        .map(|p| p.compile().expect("compiles"))
        .collect();
    let total_nodes: usize = stream.iter().map(|f| f.len()).sum();

    let mut od = OnDemandAutomaton::new(normal.clone());
    let t = median_time(3, || {
        for forest in &stream {
            od.label_forest(forest).expect("labels");
        }
    });
    let persistent_misses = {
        let mut fresh = OnDemandAutomaton::new(normal.clone());
        for forest in &stream {
            fresh.label_forest(forest).expect("labels");
        }
        fresh.counters().memo_misses
    };
    row(
        &[
            "persistent".to_owned(),
            persistent_misses.to_string(),
            od.stats().states.to_string(),
            f(t.as_nanos() as f64 / total_nodes as f64, 1),
        ],
        &widths,
    );

    let t = median_time(3, || {
        for forest in &stream {
            let mut fresh = OnDemandAutomaton::new(normal.clone());
            fresh.label_forest(forest).expect("labels");
        }
    });
    let reset_misses: u64 = stream
        .iter()
        .map(|forest| {
            let mut fresh = OnDemandAutomaton::new(normal.clone());
            fresh.label_forest(forest).expect("labels");
            fresh.counters().memo_misses
        })
        .sum();
    let max_states = stream
        .iter()
        .map(|forest| {
            let mut fresh = OnDemandAutomaton::new(normal.clone());
            fresh.label_forest(forest).expect("labels");
            fresh.stats().states
        })
        .max()
        .unwrap_or(0);
    row(
        &[
            "per-method".to_owned(),
            reset_misses.to_string(),
            format!("≤{max_states}"),
            f(t.as_nanos() as f64 / total_nodes as f64, 1),
        ],
        &widths,
    );
    println!("  (*persistent: final size; per-method: largest single-method automaton)");
    println!();
    println!("shape check: projection trades a probe per child for fewer transitions —");
    println!("its value grows with grammar ambiguity; persistence is what amortizes");
    println!("state construction, exactly the paper's deployment argument.");
}
