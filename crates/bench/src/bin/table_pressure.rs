//! **Table pressure: byte-budgeted registries under adversarial
//! multi-target churn — Compact vs Flush.**
//!
//! The memory governor's claim is that heat-tracked compaction bounds
//! table bytes like a flush does while keeping the warm working set a
//! flush throws away. This bench proves both halves on the service
//! layer: three targets sharing a value-dependent-dyncost grammar (every
//! fresh constant mints a new signature and new transitions — tables
//! grow forever without a budget) are driven for many rounds with a
//! fixed **hot** job mix (the same small constant pool every round) plus
//! **cold churn** (never-repeating constants). Both services run under
//! the same per-target byte budget; one enforces it with
//! [`PressureAction::Flush`], the other with
//! [`PressureAction::Compact`].
//!
//! Reported per mode: peak post-drain table bytes (must stay ≤ budget),
//! steady-state memo-miss rate over the second half of the run, the
//! median of the steady rounds' per-batch p99 latencies, pressure-event
//! count, and budget-policy errors (must be zero). The run asserts Compact's steady-state miss rate is at
//! least 1.3x lower than Flush's — the hot set surviving eviction is
//! exactly the point.
//!
//! Results go to stdout and, as JSON, to `target/table_pressure.json`
//! (CI's `memory-smoke` job re-checks the budget and error fields from
//! the artifact and uploads it).
//!
//! Regenerate with:
//! `cargo run --release -p odburg_bench --bin table_pressure`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use odburg::service::{SelectorService, ServiceConfig};
use odburg_bench::{f, row, rule_line};
use odburg_core::{LabelError, MemoryBudget, PressureAction};
use odburg_grammar::NormalGrammar;
use odburg_ir::{parse_sexpr, Forest};

/// Per-target byte budget. The hot working set fits comfortably inside
/// `retain_fraction * budget`, the churn does not — so pressure fires
/// round after round and the two policies separate.
const BYTE_BUDGET: usize = 15 * 1024;
const RETAIN_FRACTION: f32 = 0.6;
const ROUNDS: usize = 40;
const HOT_JOBS_PER_TARGET: usize = 8;
const COLD_JOBS_PER_TARGET: usize = 2;
const TARGETS: [&str; 3] = ["churn-a", "churn-b", "churn-c"];
/// Hot jobs draw constants from this small pool, so their signatures,
/// transitions and states repeat every round.
const HOT_POOL: u64 = 20;

struct ModeResult {
    mode: &'static str,
    peak_bytes: usize,
    steady_misses: u64,
    steady_nodes: u64,
    steady_miss_rate: f64,
    /// Median of the steady rounds' per-batch p99 latencies (a stable
    /// tail proxy; not a pooled p99 across all jobs).
    batch_p99_median_ns: u128,
    pressure_events: usize,
    budget_errors: usize,
}

/// The adversarial grammar: `ConstI8` derives `imm` for free but `reg`
/// at a cost depending on the constant's *value*. Every distinct
/// constant therefore interns a distinct signature **and** a distinct
/// normalized state (the imm/reg cost spread is the value itself) —
/// the state explosion the paper warns offline tables about, arriving
/// at run time instead.
fn churn_grammar() -> Arc<NormalGrammar> {
    let mut g = odburg_grammar::parse_grammar(
        r#"
        %grammar churn
        %start stmt
        %dyncost val
        imm: ConstI8 (0)
        reg: ConstI8 [val]
        reg: AddI8(reg, imm) (1)
        reg: AddI8(reg, reg) (1)
        reg: MulI8(reg, reg) (2)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .expect("churn grammar parses");
    g.bind_dyncost(
        "val",
        Arc::new(|forest: &Forest, node| {
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            odburg_grammar::RuleCost::Finite((v.unsigned_abs() % 769) as u16)
        }),
    )
    .expect("dyncost binds");
    Arc::new(g.normalize())
}

fn job_forest(a: u64, b: u64, c: u64) -> Forest {
    let mut forest = Forest::new();
    let root = parse_sexpr(
        &mut forest,
        &format!(
            "(StoreI8 (AddI8 (ConstI8 {a}) (ConstI8 {b})) (MulI8 (ConstI8 {c}) (ConstI8 {a})))"
        ),
    )
    .expect("bench trees parse");
    forest.add_root(root);
    forest
}

fn run_mode(mode: &'static str, action: PressureAction) -> ModeResult {
    let svc = SelectorService::new(ServiceConfig {
        workers: 2,
        memory_budget: Some(MemoryBudget {
            byte_budget: BYTE_BUDGET,
            action,
        }),
        ..ServiceConfig::default()
    });
    let grammar = churn_grammar();
    for target in TARGETS {
        svc.register_normal(target, Arc::clone(&grammar))
            .expect("bench target names are unique");
    }

    let mut result = ModeResult {
        mode,
        peak_bytes: 0,
        steady_misses: 0,
        steady_nodes: 0,
        steady_miss_rate: 0.0,
        batch_p99_median_ns: 0,
        pressure_events: 0,
        budget_errors: 0,
    };
    let mut p99s: Vec<Duration> = Vec::new();
    let mut cold = 1_000_000u64; // never overlaps the hot pool
    for round in 0..ROUNDS {
        for target in TARGETS {
            for i in 0..HOT_JOBS_PER_TARGET {
                let base = (round as u64 + i as u64) % HOT_POOL;
                svc.submit(
                    target,
                    job_forest(base, (base + 1) % HOT_POOL, (base + 2) % HOT_POOL),
                )
                .expect("submit hot");
            }
            for _ in 0..COLD_JOBS_PER_TARGET {
                svc.submit(target, job_forest(cold, cold + 1, cold + 2))
                    .expect("submit cold");
                cold += 3;
            }
        }
        let report = svc.drain();
        for job in &report.results {
            if let Err(e) = &job.outcome {
                if matches!(e, LabelError::StateBudgetExceeded { .. }) {
                    result.budget_errors += 1;
                } else {
                    panic!("bench traffic must label: {e}");
                }
            }
        }
        let steady = round >= ROUNDS / 2;
        for t in &report.per_target {
            result.peak_bytes = result.peak_bytes.max(t.table_bytes);
            if t.pressure.is_some() {
                result.pressure_events += 1;
            }
            if steady {
                result.steady_misses += t.counters.memo_misses;
                result.steady_nodes += t.counters.nodes;
            }
        }
        if steady {
            p99s.push(report.latency.p99);
        }
    }
    result.steady_miss_rate = result.steady_misses as f64 / result.steady_nodes.max(1) as f64;
    // Median through the shared histogram-backed quantile helper.
    result.batch_p99_median_ns = odburg_bench::quantile(&p99s, 0.5).as_nanos();
    result
}

fn main() {
    let jobs_per_round = TARGETS.len() * (HOT_JOBS_PER_TARGET + COLD_JOBS_PER_TARGET);
    println!(
        "Table pressure: {ROUNDS} rounds x {jobs_per_round} jobs over {} targets, \
         {BYTE_BUDGET}-byte budget per target\n",
        TARGETS.len()
    );

    let compact = run_mode(
        "compact",
        PressureAction::Compact {
            retain_fraction: RETAIN_FRACTION,
        },
    );
    let flush = run_mode("flush", PressureAction::Flush);

    let widths = [9, 11, 12, 12, 10, 10, 8];
    row(
        &[
            "mode",
            "peak.bytes",
            "miss.rate",
            "misses",
            "p99med.us",
            "pressure",
            "errors",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);
    for r in [&compact, &flush] {
        row(
            &[
                r.mode.to_owned(),
                r.peak_bytes.to_string(),
                f(r.steady_miss_rate, 4),
                r.steady_misses.to_string(),
                f(r.batch_p99_median_ns as f64 / 1e3, 1),
                r.pressure_events.to_string(),
                r.budget_errors.to_string(),
            ],
            &widths,
        );
    }
    let ratio = flush.steady_miss_rate / compact.steady_miss_rate.max(f64::MIN_POSITIVE);
    println!(
        "\ncompact holds {:.1} KiB peak (budget {:.1} KiB) at a {:.2}x lower steady-state \
         miss rate than flush",
        compact.peak_bytes as f64 / 1024.0,
        BYTE_BUDGET as f64 / 1024.0,
        ratio,
    );

    let mut json = String::from("{\n  \"bench\": \"table_pressure\",\n");
    let _ = writeln!(json, "  \"byte_budget\": {BYTE_BUDGET},");
    let _ = writeln!(json, "  \"retain_fraction\": {RETAIN_FRACTION},");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"targets\": {},", TARGETS.len());
    let _ = writeln!(json, "  \"jobs_per_round\": {jobs_per_round},");
    let _ = writeln!(json, "  \"miss_rate_ratio\": {ratio:.4},");
    json.push_str("  \"modes\": [\n");
    for (i, r) in [&compact, &flush].into_iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"peak_bytes\": {}, \"steady_miss_rate\": {:.6}, \
             \"steady_misses\": {}, \"steady_nodes\": {}, \"batch_p99_median_ns\": {}, \
             \"pressure_events\": {}, \"budget_errors\": {}}}{}",
            r.mode,
            r.peak_bytes,
            r.steady_miss_rate,
            r.steady_misses,
            r.steady_nodes,
            r.batch_p99_median_ns,
            r.pressure_events,
            r.budget_errors,
            if i == 0 { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target/table_pressure.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }

    // The three claims this bench exists for.
    for r in [&compact, &flush] {
        assert!(
            r.peak_bytes <= BYTE_BUDGET,
            "{}: peak {} bytes exceeds the {BYTE_BUDGET}-byte budget",
            r.mode,
            r.peak_bytes
        );
        assert_eq!(
            r.budget_errors, 0,
            "{}: governed runs must finish without budget-policy errors",
            r.mode
        );
        assert!(
            r.pressure_events > 0,
            "{}: the churn must actually trip the budget",
            r.mode
        );
    }
    assert!(
        ratio >= 1.3,
        "compact must beat flush by >= 1.3x on steady-state miss rate, got {ratio:.2}x \
         (compact {:.4} vs flush {:.4})",
        compact.steady_miss_rate,
        flush.steady_miss_rate
    );
}
