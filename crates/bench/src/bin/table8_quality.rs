//! **T8 — Code quality across selectors.**
//!
//! The code-quality side of the trade-off (the paper family's "0-7%
//! faster, 1-14% smaller code from dynamic costs"): per benchmark, the
//! total derivation cost (the static estimate of execution cost the
//! selector minimizes) and the emitted instruction count for
//!
//! * the optimal selector with dynamic costs (dp ≡ on-demand automaton),
//! * the optimal selector on the stripped grammar (what burg users get),
//! * macro expansion (what first-tier JITs get).
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin table8_quality`

use std::sync::Arc;

use odburg_bench::{f, row, rule_line};
use odburg_codegen::reduce_forest;
use odburg_core::Labeler;
use odburg_dp::{DpLabeler, MacroExpander};
use odburg_frontend::programs;

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let stripped_grammar = grammar.without_dynamic_rules().expect("fixed fallbacks");
    let stripped = Arc::new(stripped_grammar.normalize());

    let widths = [13, 8, 8, 8, 9, 9, 9, 8, 8];
    println!("T8: code quality on x86ish (cost = minimized static cost, size = instructions)\n");
    row(
        &[
            "benchmark",
            "opt.cost",
            "fx.cost",
            "mx.cost",
            "opt.size",
            "fx.size",
            "mx.size",
            "fx/opt",
            "mx/opt",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let mut cost_ratio_sum = 0.0;
    let mut size_ratio_sum = 0.0;
    let mut n = 0.0;
    for program in programs::all() {
        let forest = program.compile().expect("programs compile");

        let mut dp = DpLabeler::new(normal.clone());
        let labeling = dp.label_forest(&forest).expect("labels");
        let opt = reduce_forest(&forest, &normal, &labeling).expect("reduces");

        let mut dpf = DpLabeler::new(stripped.clone());
        let labeling = dpf.label_forest(&forest).expect("labels");
        let fixed = reduce_forest(&forest, &stripped, &labeling).expect("reduces");

        let mut mx = MacroExpander::new(normal.clone());
        let labeling = mx.label_forest(&forest).expect("labels");
        let mxr = reduce_forest(&forest, &normal, &labeling).expect("reduces");

        let opt_cost = opt.total_cost.value().expect("finite") as f64;
        let fx_cost = fixed.total_cost.value().expect("finite") as f64;
        let mx_cost = mxr.total_cost.value().expect("finite") as f64;
        cost_ratio_sum += fx_cost / opt_cost;
        size_ratio_sum += fixed.len() as f64 / opt.len() as f64;
        n += 1.0;

        row(
            &[
                program.name.to_owned(),
                f(opt_cost, 0),
                f(fx_cost, 0),
                f(mx_cost, 0),
                opt.len().to_string(),
                fixed.len().to_string(),
                mxr.len().to_string(),
                f(fx_cost / opt_cost, 3),
                f(mx_cost / opt_cost, 3),
            ],
            &widths,
        );
    }
    rule_line(&widths);
    println!(
        "mean fixed/optimal: cost {:.3}, size {:.3}",
        cost_ratio_sum / n,
        size_ratio_sum / n
    );
    println!();
    println!("shape check (paper family): dropping dynamic rules costs a few percent in");
    println!("static cost and code size (lcc reports 0-7% runtime, 1-14% size); macro");
    println!("expansion is clearly worse than both optimal selectors.");
}
