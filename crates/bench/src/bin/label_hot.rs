//! **The warm labeling hot path: dense index vs. the FxHashMap
//! baseline.**
//!
//! Every snapshot publication now additionally builds a dense warm-path
//! index — per-operator grouped, open-addressed transition slots plus
//! structure-of-arrays state facts — and the lock-free fast path labels
//! forests by topological levels against it. This binary measures what
//! that buys on a **fully warm** snapshot: ns/node for the dense
//! level-batched walk (`AutomatonSnapshot::label_warm`) against the
//! retained per-node `FxHashMap` walk (`label_warm_hash`, the exact
//! pre-dense fast path) across the six built-in targets.
//!
//! Both walks run over the same published snapshot and the same
//! sampled forest, and are asserted to resolve identical states with
//! **zero** warm misses — the comparison is purely the lookup
//! structures. The summary is written to `target/label_hot.json` for
//! the CI hot-path smoke job; absolute numbers come from a single-CPU
//! dev container, so read the ratios, not the nanoseconds.
//!
//! Regenerate with: `cargo run --release -p odburg_bench --bin label_hot`

use std::fmt::Write as _;
use std::sync::Arc;

use odburg_bench::{f, median_time, row, rule_line};
use odburg_core::{OnDemandAutomaton, SharedOnDemand, WorkCounters};
use odburg_workloads::TreeSampler;

const TREES: usize = 400;
const SEED: u64 = 0x0dbu64 * 1_000_003;
const REPS: usize = 17;

struct Target {
    name: String,
    nodes: usize,
    dense_ns: f64,
    hash_ns: f64,
    speedup: f64,
    warm_misses: u64,
    dense_probes: u64,
    dyncost_evals: u64,
}

fn main() {
    let mut targets: Vec<Target> = Vec::new();

    let widths = [9, 7, 10, 10, 8, 7];
    println!("Warm labeling hot path: dense-indexed level-batched walk vs FxHashMap walk\n");
    row(
        &[
            "target".into(),
            "nodes".into(),
            "hash".into(),
            "dense".into(),
            "speedup".into(),
            "misses".into(),
        ],
        &widths,
    );
    row(
        &[
            "".into(),
            "".into(),
            "ns/node".into(),
            "ns/node".into(),
            "".into(),
            "".into(),
        ],
        &widths,
    );
    rule_line(&widths);

    for grammar in odburg::targets::all() {
        let normal = Arc::new(grammar.normalize());
        let name = normal.name().to_owned();
        let forest = TreeSampler::new(&normal, SEED).sample_forest(TREES);
        let shared = SharedOnDemand::new(OnDemandAutomaton::new(Arc::clone(&normal)));
        shared.label_forest(&forest).expect("workload labels");
        let snap = shared.snapshot();

        // The snapshot must answer the whole forest warm through both
        // walks, with identical states — otherwise the timing below
        // compares different work.
        let mut dense_counters = WorkCounters::new();
        let dense_walk = snap.label_warm(&forest, &mut dense_counters);
        let warm_misses = (forest.len() - dense_walk.states.len()) as u64;
        assert!(
            dense_walk.nocover.is_none(),
            "{name}: warm walk hit NoCover"
        );
        assert_eq!(warm_misses, 0, "{name}: dense warm walk missed");
        let mut hash_counters = WorkCounters::new();
        let hash_walk = snap.label_warm_hash(&forest, &mut hash_counters);
        assert_eq!(
            hash_walk.states, dense_walk.states,
            "{name}: dense and hash walks disagree"
        );

        // ~½M node visits per timed sample. Samples alternate between
        // the two walks so machine noise drifts onto both equally, and
        // the estimate is the best (minimum) sample — the standard
        // noise-robust choice on a shared single-CPU box.
        let iters = (500_000 / forest.len()).max(8);
        let mut dense_best = f64::INFINITY;
        let mut hash_best = f64::INFINITY;
        for rep in 0..REPS {
            let dense_t = median_time(1, || {
                for _ in 0..iters {
                    let mut c = WorkCounters::new();
                    std::hint::black_box(snap.label_warm(&forest, &mut c).states.len());
                }
            });
            let hash_t = median_time(1, || {
                for _ in 0..iters {
                    let mut c = WorkCounters::new();
                    std::hint::black_box(snap.label_warm_hash(&forest, &mut c).states.len());
                }
            });
            if rep == 0 {
                continue; // warmup pair
            }
            let per_node =
                |t: std::time::Duration| t.as_nanos() as f64 / (iters * forest.len()) as f64;
            dense_best = dense_best.min(per_node(dense_t));
            hash_best = hash_best.min(per_node(hash_t));
        }
        let dense_ns = dense_best;
        let hash_ns = hash_best;
        let speedup = hash_ns / dense_ns;

        row(
            &[
                name.clone(),
                forest.len().to_string(),
                f(hash_ns, 1),
                f(dense_ns, 1),
                format!("{}x", f(speedup, 2)),
                warm_misses.to_string(),
            ],
            &widths,
        );
        targets.push(Target {
            name,
            nodes: forest.len(),
            dense_ns,
            hash_ns,
            speedup,
            warm_misses,
            dense_probes: dense_counters.table_lookups,
            dyncost_evals: dense_counters.dyncost_evals,
        });
    }

    let total_misses: u64 = targets.iter().map(|t| t.warm_misses).sum();
    let at_1_3 = targets.iter().filter(|t| t.speedup >= 1.3).count();
    let min_speedup = targets
        .iter()
        .map(|t| t.speedup)
        .fold(f64::INFINITY, f64::min);
    println!();
    println!(
        "speedup: min {}x, {} of {} targets at >= 1.3x; warm misses: {total_misses}",
        f(min_speedup, 2),
        at_1_3,
        targets.len(),
    );
    println!("shape check: a warm node costs one bounded probe of a flat slot array");
    println!("instead of a hash + bucket walk + Arc chase — the paper's pure-table-");
    println!("lookup warm path, finally shaped like one for the hardware.");

    // The hot path must never be slower than the baseline it replaced,
    // and the warm workload must be answered entirely from the index.
    assert_eq!(total_misses, 0, "warm misses on a fully warmed snapshot");
    for t in &targets {
        assert!(
            t.speedup >= 1.0,
            "{}: dense walk slower than FxHashMap baseline ({}x)",
            t.name,
            t.speedup
        );
    }

    let mut json = String::from("{\n  \"bench\": \"label_hot\",\n");
    let _ = writeln!(json, "  \"trees_per_target\": {TREES},");
    let _ = writeln!(json, "  \"min_speedup\": {min_speedup:.3},");
    let _ = writeln!(json, "  \"targets_at_1_3x\": {at_1_3},");
    let _ = writeln!(json, "  \"warm_misses\": {total_misses},");
    let _ = writeln!(json, "  \"speedup_ok\": {},", min_speedup >= 1.0);
    json.push_str("  \"targets\": [\n");
    for (i, t) in targets.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"target\": \"{}\", \"nodes\": {}, \"hash_ns_per_node\": {:.2}, \
             \"dense_ns_per_node\": {:.2}, \"speedup\": {:.3}, \"warm_misses\": {}, \
             \"dense_probes\": {}, \"dyncost_evals\": {}}}{}",
            t.name,
            t.nodes,
            t.hash_ns,
            t.dense_ns,
            t.speedup,
            t.warm_misses,
            t.dense_probes,
            t.dyncost_evals,
            if i + 1 < targets.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/label_hot.json", &json).expect("write target/label_hot.json");
    println!("\nwrote target/label_hot.json");
}
