//! **T2 — Automaton sizes: complete (offline) vs on-demand.**
//!
//! The central size claim of the paper: the on-demand automaton only ever
//! materializes the states a real workload reaches — a small fraction of
//! the complete automaton — while additionally supporting dynamic costs.
//! For every grammar this table shows the complete offline automaton
//! (dynamic rules stripped) next to the on-demand automaton after
//! labeling the whole MiniC suite plus a random workload.
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin table2_automata`

use std::sync::Arc;

use odburg_bench::{f, row, rule_line};
use odburg_core::{Labeler, OfflineAutomaton, OfflineConfig, OnDemandAutomaton};
use odburg_workloads::{combined_workload, random_workload};

fn main() {
    let widths = [9, 8, 8, 10, 10, 8, 8, 6, 10, 7];
    println!("T2: complete automaton vs on-demand automaton after one workload\n");
    row(
        &[
            "grammar",
            "off.st",
            "off.tr",
            "off.bytes",
            "off.build",
            "od.st",
            "od.tr",
            "sigs",
            "od.bytes",
            "st.pct",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let suite = combined_workload();
    for grammar in odburg::targets::all() {
        let normal = Arc::new(grammar.normalize());
        let stripped = Arc::new(
            grammar
                .without_dynamic_rules()
                .expect("fixed fallbacks")
                .normalize(),
        );
        let offline =
            OfflineAutomaton::build(stripped, OfflineConfig::default()).expect("offline builds");
        let off = offline.stats();

        let mut od = OnDemandAutomaton::new(normal.clone());
        // demo covers only its running example, so it gets a random
        // workload; the full grammars get the MiniC suite + random trees.
        if grammar.name() != "demo" {
            od.label_forest(&suite.forest).expect("suite labels");
        }
        let random = random_workload(&normal, 0x5EED, 1500);
        od.label_forest(&random.forest).expect("random labels");
        let ods = od.stats();

        row(
            &[
                grammar.name().to_owned(),
                off.states.to_string(),
                off.transition_entries.to_string(),
                off.bytes.to_string(),
                format!("{:?}", off.build_time),
                ods.states.to_string(),
                ods.transitions.to_string(),
                ods.signatures.to_string(),
                ods.bytes.to_string(),
                f(100.0 * ods.states as f64 / off.states as f64, 1),
            ],
            &widths,
        );
    }
    println!();
    println!("shape check (paper family): the on-demand automaton needs no offline build");
    println!("step, supports the dynamic rules the offline automaton had to drop, and its");
    println!("state count stays a modest fraction of (or comparable to) the complete one.");
}
