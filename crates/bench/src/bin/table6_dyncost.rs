//! **T6 — Dynamic costs on the on-demand automaton.**
//!
//! The flexibility claim: dynamic costs — impossible in offline automata —
//! work on the on-demand automaton via per-node cost signatures, produce
//! *identical* derivations to selection-time dynamic programming, and
//! still label faster. Also reports the price: extra states and interned
//! signatures compared to running the same automaton on the grammar with
//! dynamic rules removed.
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin table6_dyncost`

use std::sync::Arc;

use odburg_bench::{f, ns_per_node, row, rule_line, warm_ondemand};
use odburg_codegen::reduce_forest;
use odburg_core::{Labeler, OnDemandConfig};
use odburg_dp::DpLabeler;
use odburg_workloads::{combined_workload, replicate};

const REPS: usize = 7;

fn main() {
    let widths = [9, 10, 7, 6, 9, 9, 7, 10];
    println!("T6: dynamic costs via on-demand signatures (MiniC suite workload)\n");
    row(
        &[
            "grammar",
            "identical",
            "states",
            "sigs",
            "fx.states",
            "dp.ns/n",
            "od.ns/n",
            "dp/od",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let suite = combined_workload();
    for name in ["x86ish", "riscish", "sparcish", "jvmish"] {
        let grammar = odburg::targets::by_name(name).expect("built-in");
        let normal = Arc::new(grammar.normalize());
        let forest = replicate(&suite.forest, 10);

        // Derivation equivalence: dp and od must emit the same code.
        let mut dp = DpLabeler::new(normal.clone());
        let dp_labeling = dp.label_forest(&suite.forest).expect("labels");
        let dp_red = reduce_forest(&suite.forest, &normal, &dp_labeling).expect("reduces");
        let mut od = warm_ondemand(normal.clone(), OnDemandConfig::default(), &suite.forest);
        let od_labeling = od.label_forest(&suite.forest).expect("labels");
        let od_chooser = od_labeling.chooser(&od);
        let od_red = reduce_forest(&suite.forest, &normal, &od_chooser).expect("reduces");
        let identical =
            dp_red.instructions == od_red.instructions && dp_red.total_cost == od_red.total_cost;

        // Speed with dynamic costs active.
        let mut dp = DpLabeler::new(normal.clone());
        let dp_ns = ns_per_node(&mut dp, &forest, REPS);
        let mut od = warm_ondemand(normal.clone(), OnDemandConfig::default(), &suite.forest);
        let od_ns = ns_per_node(&mut od, &forest, REPS);

        // Signature/state overhead vs the stripped grammar.
        let stats = od.stats();
        let stripped = Arc::new(
            grammar
                .without_dynamic_rules()
                .expect("fixed fallbacks")
                .normalize(),
        );
        let od_fixed = warm_ondemand(stripped, OnDemandConfig::default(), &suite.forest);
        let fixed_states = od_fixed.stats().states;

        row(
            &[
                name.to_owned(),
                if identical { "yes" } else { "NO" }.to_owned(),
                stats.states.to_string(),
                stats.signatures.to_string(),
                fixed_states.to_string(),
                f(dp_ns, 1),
                f(od_ns, 1),
                f(dp_ns / od_ns, 2),
            ],
            &widths,
        );
        assert!(identical, "{name}: dynamic-cost derivations must match dp");
    }
    println!();
    println!("shape check (paper family): identical code to DP on every grammar; the");
    println!("state growth from dynamic-cost signatures stays below ~2x (the CC'18");
    println!("follow-up reports at most 1.75x for its constraint states).");
}
