//! **Warm start: persisted tables vs cold on-demand construction.**
//!
//! The cold-start figure (`figure7_coldstart`) shows what a fresh
//! process pays while the on-demand automaton builds its tables. This
//! binary measures the cure: the same method stream labeled by (a) a
//! cold automaton and (b) an automaton warm-started from tables that a
//! previous "process" exported — the export/import round-trips through
//! the real `odburg_core::persist` binary format, so serialization is
//! part of what is measured.
//!
//! Besides the human-readable table, the per-method trajectory and the
//! summary are written as JSON to `target/warmstart.json` for the perf
//! trajectory (CI uploads it as an artifact).
//!
//! Regenerate with: `cargo run --release -p odburg_bench --bin warmstart`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use odburg_bench::{f, row, rule_line};
use odburg_core::{persist, Labeler, OnDemandAutomaton};
use odburg_frontend::programs;

struct Method {
    name: String,
    nodes: usize,
    cold_ns: f64,
    warm_ns: f64,
    cold_misses: u64,
    warm_misses: u64,
}

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());

    // "Yesterday's process": warm an automaton on the whole suite and
    // export its tables through the persistence format.
    let mut trainer = OnDemandAutomaton::new(normal.clone());
    trainer
        .label_forest(&programs::combined_forest().expect("programs compile"))
        .expect("suite labels");
    let t = Instant::now();
    let mut table_bytes = Vec::new();
    persist::export_snapshot(&trainer.snapshot(), &mut table_bytes).expect("export succeeds");
    let export = t.elapsed();

    // "Today's restarted process": import the tables and warm-start.
    let t = Instant::now();
    let snapshot = persist::import_snapshot(&table_bytes[..], normal.clone(), trainer.config())
        .expect("import succeeds");
    let import = t.elapsed();
    let mut warm = OnDemandAutomaton::from_snapshot(&snapshot);
    let mut cold = OnDemandAutomaton::new(normal.clone());

    let widths = [13, 6, 9, 9, 8, 8];
    println!("Warm start: per-method labeling time, cold vs table-imported (x86ish)\n");
    println!(
        "tables: {} bytes, exported in {export:?}, imported in {import:?}\n",
        table_bytes.len()
    );
    row(
        &[
            "method",
            "nodes",
            "cold.ns/n",
            "warm.ns/n",
            "c.miss",
            "w.miss",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let mut methods: Vec<Method> = Vec::new();
    for program in programs::all() {
        let forest = program.compile().expect("programs compile");

        cold.reset_counters();
        let t = Instant::now();
        cold.label_forest(&forest).expect("labels");
        let cold_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;
        let cold_misses = cold.counters().memo_misses;

        warm.reset_counters();
        let t = Instant::now();
        warm.label_forest(&forest).expect("labels");
        let warm_ns = t.elapsed().as_nanos() as f64 / forest.len() as f64;
        let warm_misses = warm.counters().memo_misses;

        row(
            &[
                program.name.to_owned(),
                forest.len().to_string(),
                f(cold_ns, 1),
                f(warm_ns, 1),
                cold_misses.to_string(),
                warm_misses.to_string(),
            ],
            &widths,
        );
        methods.push(Method {
            name: program.name.to_owned(),
            nodes: forest.len(),
            cold_ns,
            warm_ns,
            cold_misses,
            warm_misses,
        });
    }

    let total_warm_misses: u64 = methods.iter().map(|m| m.warm_misses).sum();
    let weighted = |get: fn(&Method) -> f64| -> f64 {
        let nodes: usize = methods.iter().map(|m| m.nodes).sum();
        methods.iter().map(|m| get(m) * m.nodes as f64).sum::<f64>() / nodes as f64
    };
    let cold_avg = weighted(|m| m.cold_ns);
    let warm_avg = weighted(|m| m.warm_ns);
    println!();
    println!(
        "suite average: cold {} ns/node, warm {} ns/node ({}x); warm misses: {}",
        f(cold_avg, 1),
        f(warm_avg, 1),
        f(cold_avg / warm_avg, 2),
        total_warm_misses,
    );
    println!("shape check: the warm path never re-pays state construction — every");
    println!("method labels at converged hit rates from its first node, which is");
    println!("the restarted-service scenario the persistence subsystem exists for.");

    let mut json = String::from("{\n  \"bench\": \"warmstart\",\n  \"grammar\": \"x86ish\",\n");
    let _ = writeln!(json, "  \"table_bytes\": {},", table_bytes.len());
    let _ = writeln!(json, "  \"export_ns\": {},", export.as_nanos());
    let _ = writeln!(json, "  \"import_ns\": {},", import.as_nanos());
    let _ = writeln!(json, "  \"cold_ns_per_node\": {cold_avg:.2},");
    let _ = writeln!(json, "  \"warm_ns_per_node\": {warm_avg:.2},");
    let _ = writeln!(json, "  \"warm_misses\": {total_warm_misses},");
    json.push_str("  \"methods\": [\n");
    for (i, m) in methods.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"nodes\": {}, \"cold_ns_per_node\": {:.2}, \
             \"warm_ns_per_node\": {:.2}, \"cold_misses\": {}, \"warm_misses\": {}}}{}",
            m.name,
            m.nodes,
            m.cold_ns,
            m.warm_ns,
            m.cold_misses,
            m.warm_misses,
            if i + 1 == methods.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target/warmstart.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
    }

    assert_eq!(
        total_warm_misses, 0,
        "warm start must label previously-seen methods without a single miss"
    );
}
