//! **T3 — Labeling cost per node, per benchmark program.**
//!
//! The headline speed table (the analogue of the paper family's
//! "executed instructions and cycles for labeling"): for every MiniC
//! benchmark, the machine-independent *work units* per node and the
//! wall-clock nanoseconds per node for
//!
//! * `dp`      — iburg-style dynamic programming (the flexible baseline),
//! * `od`      — the warm on-demand automaton (the contribution),
//! * `offline` — the prebuilt automaton on the stripped grammar (the
//!   inflexible speed ceiling), and
//! * `macro`   — macro expansion (no cost comparison at all).
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin table3_labeling`

use std::sync::Arc;

use odburg_bench::{f, ns_per_node, row, rule_line, warm_ondemand, work_per_node};
use odburg_core::{OfflineAutomaton, OfflineConfig, OfflineLabeler, OnDemandConfig};
use odburg_dp::{DpLabeler, MacroExpander};
use odburg_frontend::programs;
use odburg_workloads::replicate;

const REPS: usize = 7;

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let stripped = Arc::new(
        grammar
            .without_dynamic_rules()
            .expect("fixed fallbacks")
            .normalize(),
    );
    let offline = Arc::new(
        OfflineAutomaton::build(stripped, OfflineConfig::default()).expect("offline builds"),
    );

    let widths = [13, 6, 8, 8, 8, 8, 9, 9, 9, 7];
    println!("T3: labeling cost per node on x86ish (work units | ns per node)\n");
    row(
        &[
            "benchmark",
            "nodes",
            "dp.work",
            "od.work",
            "off.work",
            "mx.work",
            "dp.ns",
            "od.ns",
            "off.ns",
            "dp/od",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let mut total_ratio = 0.0;
    let mut count = 0.0;
    for program in programs::all() {
        let single = program.compile().expect("programs compile");
        // Replicate so that wall-clock numbers are measurable.
        let forest = replicate(&single, 40);

        let mut dp = DpLabeler::new(normal.clone());
        let dp_work = work_per_node(&mut dp, &forest);
        let dp_ns = ns_per_node(&mut dp, &forest, REPS);

        let mut od = warm_ondemand(normal.clone(), OnDemandConfig::default(), &single);
        let od_work = work_per_node(&mut od, &forest);
        let od_ns = ns_per_node(&mut od, &forest, REPS);

        let mut off = OfflineLabeler::new(offline.clone());
        let off_work = work_per_node(&mut off, &forest);
        let off_ns = ns_per_node(&mut off, &forest, REPS);

        let mut mx = MacroExpander::new(normal.clone());
        let mx_work = work_per_node(&mut mx, &forest);

        total_ratio += dp_ns / od_ns;
        count += 1.0;
        row(
            &[
                program.name.to_owned(),
                single.len().to_string(),
                f(dp_work, 1),
                f(od_work, 1),
                f(off_work, 1),
                f(mx_work, 1),
                f(dp_ns, 1),
                f(od_ns, 1),
                f(off_ns, 1),
                f(dp_ns / od_ns, 2),
            ],
            &widths,
        );
    }
    rule_line(&widths);
    println!(
        "geometric-ish mean dp/od time ratio: {:.2}",
        total_ratio / count
    );
    println!();
    println!("shape check (paper family): the automaton labeler beats DP per node by a");
    println!("factor in the 1.3-3x range, and sits near the offline automaton's speed;");
    println!("macro expansion does the least work but selects the worst code (see T8).");
}
