//! **T1 — Grammar statistics.**
//!
//! The grammar table of the reproduced evaluation: for every machine
//! description, the source-rule counts, normal-form size, dynamic-cost
//! rule counts, and the size of the complete offline automaton built from
//! the grammar with its dynamic rules removed (offline automata cannot
//! represent dynamic costs — that inability is the paper's motivation).
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin table1_grammars`

use std::sync::Arc;

use odburg_bench::{row, rule_line};
use odburg_core::{OfflineAutomaton, OfflineConfig};

fn main() {
    let widths = [9, 6, 6, 8, 5, 4, 7, 8, 7, 10];
    println!("T1: grammar statistics (offline-automaton columns use the grammar without dynamic rules)\n");
    row(
        &[
            "grammar", "rules", "chain", "dynamic", "ops", "nts", "n.rules", "n.nts", "states",
            "bytes",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);
    for grammar in odburg::targets::all() {
        let stats = grammar.stats();
        let stripped = grammar
            .without_dynamic_rules()
            .expect("targets keep fixed fallbacks");
        let auto =
            OfflineAutomaton::build(Arc::new(stripped.normalize()), OfflineConfig::default())
                .expect("offline automata build for the shipped targets");
        let a = auto.stats();
        row(
            &[
                stats.name.clone(),
                stats.rules.to_string(),
                stats.chain_rules.to_string(),
                stats.dynamic_rules.to_string(),
                stats.operators.to_string(),
                stats.nonterminals.to_string(),
                stats.normal_rules.to_string(),
                stats.normal_nonterminals.to_string(),
                a.states.to_string(),
                a.bytes.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("shape check (paper family): hundreds of rules for the lcc-style grammars,");
    println!("tens for the JIT grammar; dynamic rules are a sizable minority everywhere.");
}
