//! **F5 — Labeling cost per *emitted* instruction.**
//!
//! The JIT-relevant metric of the paper family (its Figures 6-9): how
//! much labeling work buys one generated machine instruction, per
//! benchmark, for the dynamic-programming labeler, the warm on-demand
//! automaton, and the offline automaton.
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin figure5_per_emitted`

use std::sync::Arc;

use odburg_bench::{f, median_time, row, rule_line, warm_ondemand};
use odburg_codegen::reduce_forest;
use odburg_core::{Labeler, OfflineAutomaton, OfflineConfig, OfflineLabeler, OnDemandConfig};
use odburg_dp::DpLabeler;
use odburg_frontend::programs;
use odburg_workloads::replicate;

const REPS: usize = 7;

fn main() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let stripped = Arc::new(
        grammar
            .without_dynamic_rules()
            .expect("fixed fallbacks")
            .normalize(),
    );
    let offline = Arc::new(
        OfflineAutomaton::build(stripped, OfflineConfig::default()).expect("offline builds"),
    );

    let widths = [13, 7, 9, 9, 9, 10, 10, 10];
    println!("F5: labeling cost per emitted instruction on x86ish\n");
    row(
        &[
            "benchmark",
            "instrs",
            "dp.w/i",
            "od.w/i",
            "off.w/i",
            "dp.ns/i",
            "od.ns/i",
            "off.ns/i",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    for program in programs::all() {
        let single = program.compile().expect("programs compile");
        let forest = replicate(&single, 40);

        // Emitted instruction count (identical across optimal labelers).
        let mut dp = DpLabeler::new(normal.clone());
        let labeling = dp.label_forest(&single).expect("labels");
        let emitted = reduce_forest(&single, &normal, &labeling)
            .expect("reduces")
            .len();
        let emitted_rep = (emitted * 40) as f64;

        let mut dp = DpLabeler::new(normal.clone());
        dp.label_forest(&forest).expect("labels");
        let dp_w = dp.counters().work_units() as f64 / emitted_rep;
        let dp_t = median_time(REPS, || {
            dp.label_forest(&forest).expect("labels");
        })
        .as_nanos() as f64
            / emitted_rep;

        let mut od = warm_ondemand(normal.clone(), OnDemandConfig::default(), &single);
        od.label_forest(&forest).expect("labels");
        let od_w = od.counters().work_units() as f64 / emitted_rep;
        let od_t = median_time(REPS, || {
            od.label_forest(&forest).expect("labels");
        })
        .as_nanos() as f64
            / emitted_rep;

        let mut off = OfflineLabeler::new(offline.clone());
        off.label_forest(&forest).expect("labels");
        let off_w = off.counters().work_units() as f64 / emitted_rep;
        let off_t = median_time(REPS, || {
            off.label_forest(&forest).expect("labels");
        })
        .as_nanos() as f64
            / emitted_rep;

        row(
            &[
                program.name.to_owned(),
                emitted.to_string(),
                f(dp_w, 1),
                f(od_w, 1),
                f(off_w, 1),
                f(dp_t, 1),
                f(od_t, 1),
                f(off_t, 1),
            ],
            &widths,
        );
    }
    println!();
    println!("shape check (paper family): per emitted instruction the automaton needs");
    println!("a small fraction of DP's work; the gap between od and offline is small.");
}
