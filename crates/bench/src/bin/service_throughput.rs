//! **Service throughput: batched multi-target labeling, cold vs warm
//! registry.**
//!
//! The `warmstart` bench measures one automaton; this one measures the
//! whole service layer: a [`SelectorService`] registry over all six
//! built-in targets, fed a fixed-seed mixed-traffic batch
//! ([`odburg_workloads::mixed_traffic`]), drained across 1/2/4/8
//! workers — once with a cold registry and once warm-started from
//! tables trained on exactly this traffic. Reported per run: jobs/s,
//! p50/p99 per-job latency, and the per-target miss counts that prove
//! the warm registry never re-enters the grow path on the seen suite.
//!
//! Results go to stdout and, as JSON, to
//! `target/service_throughput.json` (CI uploads the artifact).
//!
//! Regenerate with:
//! `cargo run --release -p odburg_bench --bin service_throughput`

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use odburg::service::{SelectorService, ServiceConfig};
use odburg_bench::{f, row, rule_line};
use odburg_core::{persist, Labeler, OnDemandAutomaton};
use odburg_grammar::NormalGrammar;
use odburg_workloads::{mixed_traffic, TrafficJob};

const SEED: u64 = 0xC0FFEE;
const JOBS: usize = 120;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    workers: usize,
    warm: bool,
    batch_ns: u128,
    jobs_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    misses: u64,
    nodes: u64,
}

fn main() {
    let grammars: Vec<(String, Arc<NormalGrammar>)> = odburg::targets::all()
        .into_iter()
        .map(|g| (g.name().to_owned(), Arc::new(g.normalize())))
        .collect();
    let refs: Vec<(&str, &NormalGrammar)> = grammars
        .iter()
        .map(|(n, g)| (n.as_str(), g.as_ref()))
        .collect();
    let traffic = mixed_traffic(&refs, SEED, JOBS);
    let total_nodes: usize = traffic.iter().map(|j| j.forest.len()).sum();

    // "Yesterday's service": train one automaton per target on exactly
    // the traffic it will see, and persist the tables.
    let tables_dir = PathBuf::from("target/service-tables");
    std::fs::create_dir_all(&tables_dir).expect("create tables dir");
    for (name, normal) in &grammars {
        let mut seen = odburg_ir::Forest::new();
        for job in traffic.iter().filter(|j| j.target == *name) {
            seen.append(&job.forest);
        }
        // Every target appears in a 120-job mix, but train defensively.
        if seen.is_empty() {
            seen = odburg_workloads::random_workload(normal, SEED, 16).forest;
        }
        let mut trainer = OnDemandAutomaton::new(Arc::clone(normal));
        trainer.label_forest(&seen).expect("training labels");
        persist::save_tables(
            &trainer.snapshot(),
            &tables_dir.join(format!("{name}.odbt")),
        )
        .expect("tables export");
    }

    println!(
        "Service throughput: {JOBS} mixed-target jobs ({total_nodes} nodes) over {} targets\n",
        grammars.len()
    );
    let widths = [8, 6, 10, 11, 10, 10, 8];
    row(
        &[
            "workers", "mode", "batch.ms", "jobs/s", "p50.us", "p99.us", "misses",
        ]
        .map(String::from),
        &widths,
    );
    rule_line(&widths);

    let mut runs: Vec<Run> = Vec::new();
    for &workers in &WORKER_COUNTS {
        for warm in [false, true] {
            let svc = SelectorService::with_builtin_targets(ServiceConfig {
                workers,
                tables_dir: warm.then(|| tables_dir.clone()),
                ..ServiceConfig::default()
            });
            // Time submission *and* drain: masters are built at first
            // submit, so the warm registry pays its table-file loads
            // inside this window, exactly where the cold registry pays
            // table construction — the comparison is end to end.
            let t = Instant::now();
            submit_all(&svc, &traffic);
            let report = svc.drain();
            let batch_ns = t.elapsed().as_nanos();
            assert_eq!(report.failed(), 0, "sampled traffic always labels");
            assert_eq!(report.results.len(), JOBS);
            // Conservation recomputed purely from the telemetry registry
            // of the batch server: every submitted job was accepted
            // (uncapped batch queue) and completed.
            let totals = svc
                .telemetry()
                .expect("drain started the batch server")
                .totals();
            assert!(totals.conserved(), "registry conservation: {totals:?}");
            assert_eq!(totals.accepted, JOBS as u64);
            assert_eq!(totals.completed, JOBS as u64);
            let misses: u64 = report
                .per_target
                .iter()
                .map(|t| t.counters.memo_misses)
                .sum();
            for t in &report.per_target {
                assert_eq!(t.warm_started, warm, "{}: registry mode mismatch", t.target);
            }
            let run = Run {
                workers,
                warm,
                batch_ns,
                jobs_per_s: JOBS as f64 / (batch_ns as f64 / 1e9),
                p50_us: report.latency.p50.as_nanos() as f64 / 1e3,
                p99_us: report.latency.p99.as_nanos() as f64 / 1e3,
                misses,
                nodes: total_nodes as u64,
            };
            row(
                &[
                    workers.to_string(),
                    if warm { "warm" } else { "cold" }.to_owned(),
                    f(batch_ns as f64 / 1e6, 2),
                    f(run.jobs_per_s, 0),
                    f(run.p50_us, 1),
                    f(run.p99_us, 1),
                    misses.to_string(),
                ],
                &widths,
            );
            runs.push(run);
        }
    }

    println!();
    for &workers in &WORKER_COUNTS {
        let cold = runs
            .iter()
            .find(|r| r.workers == workers && !r.warm)
            .unwrap();
        let warm = runs
            .iter()
            .find(|r| r.workers == workers && r.warm)
            .unwrap();
        println!(
            "{workers} worker(s): warm registry {}x faster than cold on the seen suite",
            f(cold.batch_ns as f64 / warm.batch_ns as f64, 2)
        );
    }

    let mut json = String::from("{\n  \"bench\": \"service_throughput\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"jobs\": {JOBS},");
    let _ = writeln!(json, "  \"nodes\": {total_nodes},");
    let _ = writeln!(json, "  \"targets\": {},", grammars.len());
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"mode\": \"{}\", \"batch_ns\": {}, \"jobs_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"misses\": {}, \"nodes\": {}}}{}",
            r.workers,
            if r.warm { "warm" } else { "cold" },
            r.batch_ns,
            r.jobs_per_s,
            r.p50_us,
            r.p99_us,
            r.misses,
            r.nodes,
            if i + 1 == runs.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("target/service_throughput.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncannot write {}: {e}", path.display()),
    }

    // The two shape checks this bench exists for: the warm registry
    // answers the seen suite entirely from its imported tables, and that
    // makes it strictly faster than paying table construction cold.
    let warm_misses: u64 = runs.iter().filter(|r| r.warm).map(|r| r.misses).sum();
    assert_eq!(
        warm_misses, 0,
        "a warm registry must label the traffic its tables were trained on without a miss"
    );
    let cold_total: u128 = runs.iter().filter(|r| !r.warm).map(|r| r.batch_ns).sum();
    let warm_total: u128 = runs.iter().filter(|r| r.warm).map(|r| r.batch_ns).sum();
    assert!(
        warm_total < cold_total,
        "warm registry batches ({warm_total} ns) must beat cold ({cold_total} ns) on the seen suite"
    );
}

fn submit_all(svc: &SelectorService, traffic: &[TrafficJob]) {
    for job in traffic {
        svc.submit(&job.target, job.forest.clone())
            .expect("all traffic targets are registered");
    }
}
