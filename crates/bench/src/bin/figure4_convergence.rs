//! **F4 — On-demand automaton convergence.**
//!
//! The growth curve that makes the whole idea work: states created as a
//! function of nodes labeled. Compiler IR is so repetitive that the curve
//! flattens after a few hundred nodes — from then on labeling is pure
//! hash-lookup fast path. One series per grammar; checkpoints are
//! log-spaced. Output is `nodes states transitions hit_rate` per line,
//! ready for a plotting tool.
//!
//! Regenerate with: `cargo run --release -p odburg-bench --bin figure4_convergence`

use std::sync::Arc;

use odburg_core::{Labeler, OnDemandAutomaton};
use odburg_ir::Forest;
use odburg_workloads::{combined_workload, random_workload, replicate};

fn main() {
    println!("F4: on-demand automaton growth (series per grammar)\n");
    let suite = combined_workload();
    for grammar in odburg::targets::all() {
        let normal = Arc::new(grammar.normalize());
        let forest = if grammar.name() == "demo" {
            random_workload(&normal, 0xF4, 4000).forest
        } else {
            // Suite three times over + random tail: convergence must
            // survive both program repetition and shape diversity.
            let mut f = replicate(&suite.forest, 3);
            f.append(&random_workload(&normal, 0xF4, 1000).forest);
            f
        };

        println!("grammar {} ({} nodes):", grammar.name(), forest.len());
        println!(
            "{:>9} {:>7} {:>8} {:>8}",
            "nodes", "states", "trans", "hit%"
        );
        let mut od = OnDemandAutomaton::new(normal);
        let mut labeled = 0usize;
        let mut checkpoint = 32usize;
        for &root in forest.roots() {
            let mut single = Forest::new();
            copy_tree(&forest, root, &mut single);
            od.label_forest(&single).expect("workload labels");
            labeled += single.len();
            if labeled >= checkpoint {
                let c = od.counters();
                let hits = 100.0 * c.memo_hits as f64 / (c.memo_hits + c.memo_misses) as f64;
                println!(
                    "{:>9} {:>7} {:>8} {:>8.2}",
                    labeled,
                    od.stats().states,
                    od.stats().transitions,
                    hits
                );
                checkpoint *= 2;
            }
        }
        let c = od.counters();
        let hits = 100.0 * c.memo_hits as f64 / (c.memo_hits + c.memo_misses) as f64;
        println!(
            "{:>9} {:>7} {:>8} {:>8.2}  (final)\n",
            labeled,
            od.stats().states,
            od.stats().transitions,
            hits
        );
    }
    println!("shape check (paper family): most states are created within the first few");
    println!("hundred nodes; the hit rate climbs above 99% and the curve flattens.");
}

fn copy_tree(src: &Forest, root: odburg_ir::NodeId, dst: &mut Forest) {
    fn go(src: &Forest, id: odburg_ir::NodeId, dst: &mut Forest) -> odburg_ir::NodeId {
        let node = src.node(id);
        let children: Vec<odburg_ir::NodeId> =
            node.children().iter().map(|&c| go(src, c, dst)).collect();
        let payload = match node.payload() {
            odburg_ir::Payload::Sym(s) => odburg_ir::Payload::Sym(dst.intern(src.symbol(s))),
            p => p,
        };
        dst.push(node.op(), &children, payload)
    }
    let r = go(src, root, dst);
    dst.add_root(r);
}
