//! Machine descriptions for the `odburg` instruction selector.
//!
//! Six targets, standing in for the grammars the paper family evaluates
//! on (lcc's x86/MIPS/SPARC/Alpha grammars and the CACAO AMD64 grammar):
//!
//! | target | style | flavour |
//! |--------|-------|---------|
//! | [`demo`]     | the running example + 2 address rules | AMD64 |
//! | [`x86ish`]   | CISC: memory operands, RMW stores, scaled indexing | lcc x86linux.md |
//! | [`riscish`]  | load/store, 16-bit immediates | lcc mips.md |
//! | [`sparcish`] | load/store, 13-bit immediates, spill-offset example | lcc sparc.md |
//! | [`alphaish`] | load/store, 8-bit literals, scaled adds | lcc alpha.md |
//! | [`jvmish`]   | small JIT grammar | CACAO AMD64 |
//!
//! Every dynamic-cost rule uses its dynamic cost as an *applicability
//! test*, mirroring the empirical observation (from the paper family)
//! that nearly all dynamic costs in real lburg grammars are applicability
//! tests. The implementations live in [`dyncosts`].
//!
//! # Examples
//!
//! ```
//! let g = odburg_targets::x86ish();
//! assert!(g.rules().len() > 100);
//! let names = odburg_targets::TARGET_NAMES;
//! assert!(names.contains(&"x86ish"));
//! ```

pub mod dyncosts;

use std::sync::Arc;

use odburg_grammar::{parse_grammar, DynCostFn, Grammar};

/// The names of all built-in targets, in presentation order.
pub const TARGET_NAMES: [&str; 6] = [
    "demo", "x86ish", "riscish", "sparcish", "alphaish", "jvmish",
];

fn build(name: &str, text: &str, bindings: &[(&str, DynCostFn)]) -> Grammar {
    let mut g = parse_grammar(text)
        .unwrap_or_else(|e| panic!("built-in grammar `{name}` failed to parse: {e}"));
    for (dc_name, func) in bindings {
        g.bind_dyncost(dc_name, func.clone())
            .unwrap_or_else(|e| panic!("grammar `{name}`: {e}"));
    }
    g
}

fn f(func: fn(&odburg_ir::Forest, odburg_ir::NodeId) -> odburg_grammar::RuleCost) -> DynCostFn {
    Arc::new(func)
}

/// The 6-rule running example of the paper family, with the
/// read-modify-write rule guarded by a `memop` dynamic cost.
pub fn demo() -> Grammar {
    build(
        "demo",
        include_str!("../grammars/demo.burg"),
        &[("memop", f(dyncosts::memop_left))],
    )
}

/// The CISC grammar: memory operands, RMW stores, scaled-index addressing,
/// 8/32-bit immediate tests, strength reduction.
pub fn x86ish() -> Grammar {
    build(
        "x86ish",
        include_str!("../grammars/x86ish.burg"),
        &[
            ("imm32", f(dyncosts::imm32)),
            ("memop_add", f(dyncosts::memop_left)),
            ("memop_add_r", f(dyncosts::memop_right)),
            ("memop_sub", f(dyncosts::memop_left)),
            ("memop_and", f(dyncosts::memop_left)),
            ("memop_or", f(dyncosts::memop_left)),
            ("memop_xor", f(dyncosts::memop_left)),
            ("scale_index", f(dyncosts::scale_index)),
            ("mul_pow2", f(dyncosts::mul_pow2)),
        ],
    )
}

/// The MIPS-flavoured load/store grammar with 16-bit immediate tests.
pub fn riscish() -> Grammar {
    build(
        "riscish",
        include_str!("../grammars/riscish.burg"),
        &[
            ("imm16", f(dyncosts::imm16)),
            ("addr_disp16", f(dyncosts::addr_disp16)),
            ("zero_const", f(dyncosts::zero_const)),
        ],
    )
}

/// The SPARC-flavoured grammar with 13-bit immediates and the
/// spill-offset dynamic-cost example.
pub fn sparcish() -> Grammar {
    build(
        "sparcish",
        include_str!("../grammars/sparcish.burg"),
        &[
            ("imm13", f(dyncosts::imm13)),
            ("addr_disp13", f(dyncosts::addr_disp13)),
            ("off13", f(dyncosts::off13)),
        ],
    )
}

/// The Alpha-flavoured grammar with 8-bit literals and scaled adds.
pub fn alphaish() -> Grammar {
    build(
        "alphaish",
        include_str!("../grammars/alphaish.burg"),
        &[
            ("lit8", f(dyncosts::imm8)),
            ("addr_disp16", f(dyncosts::addr_disp16)),
            ("alpha_scale", f(dyncosts::alpha_scale)),
            ("zero_const", f(dyncosts::zero_const)),
        ],
    )
}

/// The small CACAO-sized JIT grammar.
pub fn jvmish() -> Grammar {
    build(
        "jvmish",
        include_str!("../grammars/jvmish.burg"),
        &[
            ("imm32", f(dyncosts::imm32)),
            ("memop_add", f(dyncosts::memop_left)),
        ],
    )
}

/// All built-in targets, in [`TARGET_NAMES`] order.
pub fn all() -> Vec<Grammar> {
    vec![
        demo(),
        x86ish(),
        riscish(),
        sparcish(),
        alphaish(),
        jvmish(),
    ]
}

/// Looks up a built-in target by name.
pub fn by_name(name: &str) -> Option<Grammar> {
    match name {
        "demo" => Some(demo()),
        "x86ish" => Some(x86ish()),
        "riscish" => Some(riscish()),
        "sparcish" => Some(sparcish()),
        "alphaish" => Some(alphaish()),
        "jvmish" => Some(jvmish()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odburg_grammar::analysis;

    #[test]
    fn all_targets_analyze_clean() {
        // The shipped grammars must pass the verifier at `--deny=warning`
        // strength: no findings at warning severity or above (this backs
        // the CI analysis-smoke job).
        for g in all() {
            let diags = analysis::analyze(&g.normalize());
            let bad: Vec<String> = diags
                .iter()
                .filter(|d| d.severity >= analysis::Severity::Warning)
                .map(|d| d.to_string())
                .collect();
            assert!(bad.is_empty(), "grammar {}: {:?}", g.name(), bad);
        }
    }

    #[test]
    fn all_targets_have_a_state_bound() {
        // Every shipped grammar is BURS-finite: the achievable-state
        // exploration converges and yields a table-size bound.
        for g in all() {
            let full = analysis::analyze_full(&g.normalize());
            let bound = full
                .state_bound
                .unwrap_or_else(|| panic!("grammar {} did not converge", g.name()));
            assert!(bound.states > 0, "grammar {}", g.name());
            assert!(
                bound.per_op.iter().all(|&(_, n)| n >= 1),
                "grammar {}: {:?}",
                g.name(),
                bound.per_op
            );
        }
    }

    #[test]
    fn names_match_registry() {
        for name in TARGET_NAMES {
            let g = by_name(name).unwrap();
            assert_eq!(g.name(), name);
        }
        assert!(by_name("z80").is_none());
        assert_eq!(all().len(), TARGET_NAMES.len());
    }

    #[test]
    fn grammar_sizes_are_realistic() {
        let stats: Vec<_> = all().iter().map(|g| g.stats()).collect();
        // demo is tiny; jvmish small; the three lcc-style grammars have
        // grammar sizes of the order the paper family reports.
        assert_eq!(stats[0].rules, 8); // the 6 paper rules + 2 local-address rules
        assert!(stats[1].rules >= 120, "x86ish has {}", stats[1].rules);
        assert!(stats[2].rules >= 80, "riscish has {}", stats[2].rules);
        assert!(stats[3].rules >= 80, "sparcish has {}", stats[3].rules);
        assert!(stats[4].rules >= 90, "alphaish has {}", stats[4].rules);
        assert!(
            (30..80).contains(&stats[5].rules),
            "jvmish has {}",
            stats[5].rules
        );
        for s in &stats[1..] {
            assert!(s.dynamic_rules > 0, "{} lacks dynamic rules", s.name);
        }
    }

    #[test]
    fn every_target_has_bound_dyncosts() {
        // An unbound dynamic cost silently disables its rules; guard
        // against typos between the .burg files and the bindings.
        for g in all() {
            let mut forest = odburg_ir::Forest::new();
            let node = forest.leaf(
                odburg_ir::Op::new(odburg_ir::OpKind::Const, odburg_ir::TypeTag::I8),
                odburg_ir::Payload::Int(0),
            );
            for dc in g.dyncosts() {
                // Calling must not panic; unbound defaults return
                // Infinite for everything including Const 0, which all
                // shipped immediate tests accept.
                let _ = (dc.func)(&forest, node);
            }
        }
    }
}
