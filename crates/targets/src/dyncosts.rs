//! Implementations of the dynamic-cost functions referenced by the
//! machine descriptions.
//!
//! Every function is an *applicability test* in the lcc sense: it returns
//! a small finite cost when the rule's extra-grammatical side condition
//! holds at the matched node, and [`RuleCost::Infinite`] otherwise. The
//! functions receive the node matched by the rule's pattern root and may
//! inspect the whole subtree through the forest.

use odburg_grammar::RuleCost;
use odburg_ir::{Forest, NodeId, OpKind, Payload};

/// Structural equality of two subtrees (same operators, payloads and
/// shape). This is the "closer inspection of the leaf nodes" that lcc's
/// `memop()` performs to decide whether a load and a store refer to the
/// same location.
pub fn same_tree(forest: &Forest, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    let na = forest.node(a);
    let nb = forest.node(b);
    if na.op() != nb.op() || na.payload() != nb.payload() {
        return false;
    }
    na.children()
        .iter()
        .zip(nb.children())
        .all(|(&ca, &cb)| same_tree(forest, ca, cb))
}

/// The integer constant the rule's immediate test concerns: the node's own
/// payload (leaf-constant rules) or the payload of its second child
/// (`Op(reg, ConstX)`-shaped rules).
fn relevant_const(forest: &Forest, node: NodeId) -> Option<i64> {
    let n = forest.node(node);
    if let Payload::Int(v) = n.payload() {
        if n.op().arity() == 0 {
            return Some(v);
        }
    }
    if n.op().arity() == 2 {
        if let Payload::Int(v) = forest.node(n.child(1)).payload() {
            return Some(v);
        }
    }
    None
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let half = 1i64 << (bits - 1);
    (-half..half).contains(&v)
}

/// Immediate test with the given signed bit width; applicable rules cost
/// `cost`.
fn imm(forest: &Forest, node: NodeId, bits: u32, cost: u16) -> RuleCost {
    match relevant_const(forest, node) {
        Some(v) if fits_signed(v, bits) => RuleCost::Finite(cost),
        _ => RuleCost::Infinite,
    }
}

/// 8-bit immediate test (cost 1).
pub fn imm8(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 8, 1)
}

/// 13-bit immediate test (SPARC, cost 1).
pub fn imm13(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 13, 1)
}

/// 16-bit immediate test (MIPS, cost 1).
pub fn imm16(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 16, 1)
}

/// 32-bit immediate test (cost 1).
pub fn imm32(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 32, 1)
}

/// Address displacement fits 13 bits: the fold costs nothing.
pub fn addr_disp13(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 13, 0)
}

/// Address displacement fits 16 bits: the fold costs nothing.
pub fn addr_disp16(forest: &Forest, node: NodeId) -> RuleCost {
    imm(forest, node, 16, 0)
}

/// The constant is exactly zero (MIPS `$zero` register).
pub fn zero_const(forest: &Forest, node: NodeId) -> RuleCost {
    match relevant_const(forest, node) {
        Some(0) => RuleCost::Finite(1),
        _ => RuleCost::Infinite,
    }
}

/// Read-modify-write applicability: `node` is a `Store(addr, Op(Load(addr'),
/// value))` match and the rule requires `addr == addr'`. `load_side` says
/// which operand of the inner ALU op the pattern placed the load on.
fn memop(forest: &Forest, node: NodeId, load_side: usize) -> RuleCost {
    let store = forest.node(node);
    if store.op().kind != OpKind::Store {
        return RuleCost::Infinite;
    }
    let alu = forest.node(store.child(1));
    if alu.op().arity() != 2 {
        return RuleCost::Infinite;
    }
    let load = forest.node(alu.child(load_side));
    if load.op().kind != OpKind::Load {
        return RuleCost::Infinite;
    }
    if same_tree(forest, store.child(0), load.child(0)) {
        RuleCost::Finite(1)
    } else {
        RuleCost::Infinite
    }
}

/// RMW test for patterns with the load as the *left* ALU operand.
pub fn memop_left(forest: &Forest, node: NodeId) -> RuleCost {
    memop(forest, node, 0)
}

/// RMW test for patterns with the load as the *right* ALU operand.
pub fn memop_right(forest: &Forest, node: NodeId) -> RuleCost {
    memop(forest, node, 1)
}

/// Scaled-index addressing: `Add(reg, Mul(reg, k))` with `k ∈ {1,2,4,8}`,
/// or `Add(reg, Shl(reg, k))` with `k ∈ {0,1,2,3}`. Folds for free.
pub fn scale_index(forest: &Forest, node: NodeId) -> RuleCost {
    let add = forest.node(node);
    if add.op().arity() != 2 {
        return RuleCost::Infinite;
    }
    let inner = forest.node(add.child(1));
    if inner.op().arity() != 2 {
        return RuleCost::Infinite;
    }
    let Payload::Int(k) = forest.node(inner.child(1)).payload() else {
        return RuleCost::Infinite;
    };
    let ok = match inner.op().kind {
        OpKind::Mul => matches!(k, 1 | 2 | 4 | 8),
        OpKind::Shl => (0..=3).contains(&k),
        _ => false,
    };
    if ok {
        RuleCost::Finite(0)
    } else {
        RuleCost::Infinite
    }
}

/// Alpha s4addq/s8addq: a multiply by 4/8 (or shift by 2/3) folded into
/// an add. The scaled operand may be either child of the add.
pub fn alpha_scale(forest: &Forest, node: NodeId) -> RuleCost {
    let add = forest.node(node);
    if add.op().arity() != 2 {
        return RuleCost::Infinite;
    }
    for side in 0..2 {
        let inner = forest.node(add.child(side));
        if inner.op().arity() != 2 {
            continue;
        }
        let Payload::Int(k) = forest.node(inner.child(1)).payload() else {
            continue;
        };
        let ok = match inner.op().kind {
            OpKind::Mul => matches!(k, 4 | 8),
            OpKind::Shl => matches!(k, 2 | 3),
            _ => false,
        };
        if ok {
            return RuleCost::Finite(1);
        }
    }
    RuleCost::Infinite
}

/// Multiply by a power of two: strength-reduce to a shift (cost 1).
pub fn mul_pow2(forest: &Forest, node: NodeId) -> RuleCost {
    match relevant_const(forest, node) {
        Some(v) if v > 0 && (v as u64).is_power_of_two() => RuleCost::Finite(1),
        _ => RuleCost::Infinite,
    }
}

/// Shift count is a valid immediate (0..64), cost 1.
pub fn shift_count(forest: &Forest, node: NodeId) -> RuleCost {
    match relevant_const(forest, node) {
        Some(v) if (0..64).contains(&v) => RuleCost::Finite(1),
        _ => RuleCost::Infinite,
    }
}

/// The SPARC "spill" example: a local variable's frame offset fits in 13
/// bits. Frame offsets are modelled deterministically as
/// `8 × symbol-index`.
pub fn off13(forest: &Forest, node: NodeId) -> RuleCost {
    match forest.node(node).payload() {
        Payload::Sym(s) => {
            if (s.0 as i64) * 8 < 4096 {
                RuleCost::Finite(0)
            } else {
                RuleCost::Infinite
            }
        }
        _ => RuleCost::Infinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odburg_ir::parse_sexpr;

    fn forest(src: &str) -> (Forest, NodeId) {
        let mut f = Forest::new();
        let root = parse_sexpr(&mut f, src).unwrap();
        (f, root)
    }

    #[test]
    fn same_tree_structural() {
        let (f, root) = forest(
            "(StoreI8 (AddP (LoadP (AddrLocalP @p)) (ConstI8 8)) \
             (AddI8 (LoadI8 (AddP (LoadP (AddrLocalP @p)) (ConstI8 8))) (ConstI8 1)))",
        );
        let store = f.node(root);
        let load = f.node(f.node(store.child(1)).child(0));
        assert!(same_tree(&f, store.child(0), load.child(0)));
        // Different displacement is a different address.
        let (f2, root2) = forest(
            "(StoreI8 (AddP (LoadP (AddrLocalP @p)) (ConstI8 8)) \
             (AddI8 (LoadI8 (AddP (LoadP (AddrLocalP @p)) (ConstI8 16))) (ConstI8 1)))",
        );
        let store2 = f2.node(root2);
        let load2 = f2.node(f2.node(store2.child(1)).child(0));
        assert!(!same_tree(&f2, store2.child(0), load2.child(0)));
    }

    #[test]
    fn memop_checks_side_and_address() {
        let (f, root) =
            forest("(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))");
        assert_eq!(memop_left(&f, root), RuleCost::Finite(1));
        assert_eq!(memop_right(&f, root), RuleCost::Infinite);
        let (f2, root2) =
            forest("(StoreI8 (AddrLocalP @x) (AddI8 (ConstI8 1) (LoadI8 (AddrLocalP @x))))");
        assert_eq!(memop_right(&f2, root2), RuleCost::Finite(1));
        assert_eq!(memop_left(&f2, root2), RuleCost::Infinite);
        let (f3, root3) =
            forest("(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @y)) (ConstI8 1)))");
        assert_eq!(memop_left(&f3, root3), RuleCost::Infinite);
    }

    #[test]
    fn immediates_respect_width() {
        let (f, n) = forest("(ConstI8 100)");
        assert_eq!(imm8(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(ConstI8 200)");
        assert_eq!(imm8(&f, n), RuleCost::Infinite);
        assert_eq!(imm13(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(ConstI8 40000)");
        assert_eq!(imm16(&f, n), RuleCost::Infinite);
        assert_eq!(imm32(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(ConstI8 5000000000)");
        assert_eq!(imm32(&f, n), RuleCost::Infinite);
    }

    #[test]
    fn binary_shapes_use_right_child() {
        let (f, n) = forest("(AddI8 (ConstI8 99999) (ConstI8 4))");
        // The left (reg) operand's value is irrelevant; the right child is
        // the immediate.
        assert_eq!(imm8(&f, n), RuleCost::Finite(1));
    }

    #[test]
    fn scale_index_variants() {
        let (f, n) = forest("(AddP (ConstP 0) (MulI8 (ConstI8 3) (ConstI8 8)))");
        assert_eq!(scale_index(&f, n), RuleCost::Finite(0));
        let (f, n) = forest("(AddP (ConstP 0) (MulI8 (ConstI8 3) (ConstI8 6)))");
        assert_eq!(scale_index(&f, n), RuleCost::Infinite);
        let (f, n) = forest("(AddP (ConstP 0) (ShlI8 (ConstI8 3) (ConstI8 2)))");
        assert_eq!(scale_index(&f, n), RuleCost::Finite(0));
        let (f, n) = forest("(AddP (ConstP 0) (ShlI8 (ConstI8 3) (ConstI8 9)))");
        assert_eq!(scale_index(&f, n), RuleCost::Infinite);
    }

    #[test]
    fn strength_reduction_tests() {
        let (f, n) = forest("(MulI8 (ConstI8 3) (ConstI8 16))");
        assert_eq!(mul_pow2(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(MulI8 (ConstI8 3) (ConstI8 12))");
        assert_eq!(mul_pow2(&f, n), RuleCost::Infinite);
        let (f, n) = forest("(ShlI8 (ConstI8 3) (ConstI8 63))");
        assert_eq!(shift_count(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(ShlI8 (ConstI8 3) (ConstI8 64))");
        assert_eq!(shift_count(&f, n), RuleCost::Infinite);
    }

    #[test]
    fn zero_and_offsets() {
        let (f, n) = forest("(ConstI8 0)");
        assert_eq!(zero_const(&f, n), RuleCost::Finite(1));
        let (f, n) = forest("(ConstI8 1)");
        assert_eq!(zero_const(&f, n), RuleCost::Infinite);
        let (f, n) = forest("(AddrLocalP @x)");
        assert_eq!(off13(&f, n), RuleCost::Finite(0));
    }
}
