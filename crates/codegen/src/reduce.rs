//! Derivation walking and template rendering.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use odburg_core::RuleChooser;
use odburg_grammar::{Cost, NormalGrammar, NormalRhs, NormalRuleId, NtId, Pattern};
use odburg_ir::{Forest, NodeId, Payload};

/// A virtual register number allocated by the reducer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Errors produced while reducing a labeled tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// The labeler recorded no rule for this node/nonterminal pair — the
    /// tree was not derivable from the requested goal.
    MissingRule {
        /// The node being reduced.
        node: NodeId,
        /// The requested nonterminal.
        nt: NtId,
    },
    /// A chosen dynamic-cost rule turned out inapplicable at emission
    /// time. Labeler and reducer disagree — this is a bug in the labeler.
    InapplicableRule {
        /// The node being reduced.
        node: NodeId,
        /// The offending rule.
        rule: NormalRuleId,
    },
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::MissingRule { node, nt } => {
                write!(
                    f,
                    "no rule recorded for node {node} / nonterminal #{}",
                    nt.0
                )
            }
            ReduceError::InapplicableRule { node, rule } => write!(
                f,
                "rule #{} chosen at node {node} is inapplicable at emission time",
                rule.0
            ),
        }
    }
}

impl Error for ReduceError {}

/// The output of reduction: instructions, the applied rules, and the total
/// derivation cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reduction {
    /// Emitted machine instructions, in order.
    pub instructions: Vec<String>,
    /// `(node, rule)` pairs in action (post-order) sequence.
    pub applied: Vec<(NodeId, NormalRuleId)>,
    /// Sum of the applied rules' costs (dynamic costs evaluated at their
    /// nodes). This is the derivation cost the labeler minimized.
    pub total_cost: Cost,
    next_vreg: u32,
}

impl Reduction {
    /// Number of emitted instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    fn fresh_vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Instructions containing unresolved `?…` placeholders — template or
    /// grammar wiring problems a back-end author wants to see.
    pub fn lint_rendering(&self) -> Vec<&str> {
        self.instructions
            .iter()
            .filter(|i| i.contains('?'))
            .map(String::as_str)
            .collect()
    }
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instructions {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

/// Per-reduction bookkeeping: result registers and visited derivations.
///
/// Sharing one context across roots is what makes DAG reduction work:
/// once a `(node, nonterminal)` derivation has been reduced, later
/// ancestors reuse its result instead of re-emitting it — the "node
/// duplication ends once derivations meet" rule of DAG tree-parsing.
#[derive(Debug, Default)]
struct ReduceCtx {
    results: HashMap<(NodeId, NtId), VReg>,
    done: std::collections::HashSet<(NodeId, NtId)>,
}

/// Reduces the (sub)graph rooted at `root` from `goal`, appending into
/// `out`.
///
/// Each call uses fresh bookkeeping; shared nodes *within* the subgraph
/// are reduced once, but sharing across separate `reduce_tree` calls is
/// not detected — use [`reduce_forest`] for whole-forest DAGs.
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce_tree(
    forest: &Forest,
    grammar: &NormalGrammar,
    chooser: &dyn RuleChooser,
    root: NodeId,
    goal: NtId,
    out: &mut Reduction,
) -> Result<(), ReduceError> {
    let mut ctx = ReduceCtx::default();
    reduce_at(forest, grammar, chooser, root, goal, out, &mut ctx)
}

/// Reduces every registered root of `forest` from the grammar's start
/// nonterminal and returns the combined result.
///
/// Works on trees and on DAGs (e.g. built with
/// [`odburg_ir::cse_forest`]): derivations shared between trees are
/// emitted once.
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce_forest(
    forest: &Forest,
    grammar: &NormalGrammar,
    chooser: &dyn RuleChooser,
) -> Result<Reduction, ReduceError> {
    let mut out = Reduction::default();
    let mut ctx = ReduceCtx::default();
    for &root in forest.roots() {
        reduce_at(
            forest,
            grammar,
            chooser,
            root,
            grammar.start(),
            &mut out,
            &mut ctx,
        )?;
    }
    Ok(out)
}

fn reduce_at(
    forest: &Forest,
    grammar: &NormalGrammar,
    chooser: &dyn RuleChooser,
    node: NodeId,
    goal: NtId,
    out: &mut Reduction,
    ctx: &mut ReduceCtx,
) -> Result<(), ReduceError> {
    // DAGs: a derivation already reduced through another parent is
    // reused, not repeated.
    if ctx.done.contains(&(node, goal)) {
        return Ok(());
    }
    let rule_id = chooser
        .rule_for(node, goal)
        .ok_or(ReduceError::MissingRule { node, nt: goal })?;
    let rule = grammar.rule(rule_id);
    debug_assert_eq!(rule.lhs, goal, "labeler recorded rule for wrong goal");

    // Reduce operands first (post-order actions).
    match &rule.rhs {
        NormalRhs::Chain { from } => {
            reduce_at(forest, grammar, chooser, node, *from, out, ctx)?;
        }
        NormalRhs::Base { operands, .. } => {
            for (i, &operand) in operands.iter().enumerate() {
                let child = forest.node(node).child(i);
                reduce_at(forest, grammar, chooser, child, operand, out, ctx)?;
            }
        }
    }

    // Account the rule's cost (validates dynamic rules a second time).
    let rc = grammar.rule_cost_at(rule_id, forest, node);
    match rc.value() {
        Some(v) => out.total_cost = out.total_cost + Cost::from(v),
        None => {
            return Err(ReduceError::InapplicableRule {
                node,
                rule: rule_id,
            })
        }
    }
    out.applied.push((node, rule_id));

    // Fire the action of final rules.
    if rule.is_final {
        fire_action(forest, grammar, rule_id, node, goal, out, &mut ctx.results);
    }
    ctx.done.insert((node, goal));
    Ok(())
}

/// Emits the source rule's template (if any) and registers the result
/// vreg for `(node, goal)`.
fn fire_action(
    forest: &Forest,
    grammar: &NormalGrammar,
    rule_id: NormalRuleId,
    node: NodeId,
    goal: NtId,
    out: &mut Reduction,
    results: &mut HashMap<(NodeId, NtId), VReg>,
) {
    let source = grammar.source_rule(rule_id);

    // Collect the (node, nt) positions of the original pattern's
    // nonterminal leaves by walking the pattern over the subtree.
    let mut leaves: Vec<(NodeId, NtId)> = Vec::new();
    let mut first_payload: Option<Payload> = None;
    collect_pattern_leaves(
        forest,
        &source.pattern,
        node,
        &mut leaves,
        &mut first_payload,
    );

    let Some(template) = &source.template else {
        // No action: chain rules pass their operand's value through.
        if let Some(&(leaf_node, leaf_nt)) = leaves.first() {
            if let Some(&v) = results.get(&(leaf_node, leaf_nt)) {
                results.insert((node, goal), v);
            }
        }
        return;
    };

    let dst = if template.contains("{dst}") {
        let v = out.fresh_vreg();
        results.insert((node, goal), v);
        Some(v)
    } else {
        None
    };

    for part in template.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.instructions.push(render(
            part,
            forest,
            node,
            dst,
            &leaves,
            first_payload,
            results,
        ));
    }
}

fn collect_pattern_leaves(
    forest: &Forest,
    pattern: &Pattern,
    node: NodeId,
    leaves: &mut Vec<(NodeId, NtId)>,
    first_payload: &mut Option<Payload>,
) {
    match pattern {
        Pattern::Nt(nt) => leaves.push((node, *nt)),
        Pattern::Op { children, .. } => {
            if first_payload.is_none() {
                match forest.node(node).payload() {
                    Payload::None => {}
                    p => *first_payload = Some(p),
                }
            }
            for (i, c) in children.iter().enumerate() {
                collect_pattern_leaves(
                    forest,
                    c,
                    forest.node(node).child(i),
                    leaves,
                    first_payload,
                );
            }
        }
    }
}

/// Best-effort payload for rendering a folded operand: the node's own
/// payload, or the first payload found walking down first children.
fn payload_below(forest: &Forest, mut node: NodeId) -> Option<Payload> {
    loop {
        let p = forest.node(node).payload();
        if p != Payload::None {
            return Some(p);
        }
        match forest.node(node).children().first() {
            Some(&c) => node = c,
            None => return None,
        }
    }
}

fn push_payload(s: &mut String, forest: &Forest, p: Payload) {
    match p {
        Payload::Int(v) => s.push_str(&v.to_string()),
        Payload::FloatBits(b) => s.push_str(&f64::from_bits(b).to_string()),
        Payload::Sym(sym) => s.push_str(forest.symbol(sym)),
        Payload::None => s.push_str("?payload"),
    }
}

fn render(
    template: &str,
    forest: &Forest,
    node: NodeId,
    dst: Option<VReg>,
    leaves: &[(NodeId, NtId)],
    first_payload: Option<Payload>,
    results: &HashMap<(NodeId, NtId), VReg>,
) -> String {
    let mut s = String::with_capacity(template.len() + 8);
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        s.push_str(&rest[..open]);
        let Some(close) = rest[open..].find('}') else {
            rest = &rest[open..];
            break;
        };
        let key = &rest[open + 1..open + close];
        match key {
            "dst" => match dst {
                Some(v) => s.push_str(&v.to_string()),
                None => s.push_str("?dst"),
            },
            "a" | "b" | "c" | "d" => {
                let idx = (key.as_bytes()[0] - b'a') as usize;
                match leaves.get(idx).and_then(|k| results.get(k)) {
                    Some(v) => s.push_str(&v.to_string()),
                    None => {
                        // Folded operands (addressing modes, memory
                        // operands) have no vreg; render a best-effort
                        // payload from the leaf's subtree.
                        match leaves.get(idx).and_then(|&(n, _)| payload_below(forest, n)) {
                            Some(p) => push_payload(&mut s, forest, p),
                            None => {
                                s.push('?');
                                s.push_str(key);
                            }
                        }
                    }
                }
            }
            // Payload of the node bound to the pattern's nth nonterminal
            // leaf (constants matched through a `con`-style nonterminal).
            "pa" | "pb" | "pc" | "pd" => {
                let idx = (key.as_bytes()[1] - b'a') as usize;
                match leaves.get(idx).map(|&(n, _)| forest.node(n).payload()) {
                    Some(p) if p != Payload::None => push_payload(&mut s, forest, p),
                    _ => {
                        s.push('?');
                        s.push_str(key);
                    }
                }
            }
            "imm" => {
                let p = first_payload.unwrap_or_else(|| forest.node(node).payload());
                if p == Payload::None {
                    s.push_str("?imm");
                } else {
                    push_payload(&mut s, forest, p);
                }
            }
            "sym" => match first_payload {
                Some(Payload::Sym(sym)) => s.push_str(forest.symbol(sym)),
                Some(Payload::Int(v)) => s.push_str(&v.to_string()),
                _ => s.push_str("?sym"),
            },
            "lbl" => match forest.node(node).payload() {
                Payload::Sym(sym) => s.push_str(forest.symbol(sym)),
                Payload::Int(v) => s.push_str(&v.to_string()),
                _ => s.push_str("?lbl"),
            },
            other => {
                s.push('{');
                s.push_str(other);
                s.push('}');
            }
        }
        rest = &rest[open + close + 1..];
    }
    s.push_str(rest);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use odburg_core::Labeler;
    use odburg_dp::DpLabeler;
    use odburg_grammar::parse_grammar;
    use odburg_ir::parse_sexpr;
    use std::sync::Arc;

    const DEMO: &str = r#"
        %grammar demo
        %start stmt
        addr: reg (0)
        reg: ConstI8 (1) "mov ${imm}, {dst}"
        reg: LoadI8(addr) (1) "mov ({a}), {dst}"
        reg: AddI8(reg, reg) (1) "add {a}, {b}; mov {b}, {dst}"
        stmt: StoreI8(addr, reg) (1) "mov {b}, ({a})"
        stmt: StoreI8(addr, AddI8(LoadI8(addr), reg)) (1) "add {c}, ({a})"
    "#;

    fn reduce_src(src: &str) -> (Arc<NormalGrammar>, Reduction) {
        let g = Arc::new(parse_grammar(DEMO).unwrap().normalize());
        let mut dp = DpLabeler::new(g.clone());
        let mut f = Forest::new();
        let root = parse_sexpr(&mut f, src).unwrap();
        f.add_root(root);
        let labeling = dp.label_forest(&f).unwrap();
        let red = reduce_forest(&f, &g, &labeling).unwrap();
        (g, red)
    }

    #[test]
    fn rmw_emits_single_add() {
        let (_, red) = reduce_src("(StoreI8 (ConstI8 0) (AddI8 (LoadI8 (ConstI8 0)) (ConstI8 5)))");
        // Expected: one `mov $k, vN` per const leaf (both address copies
        // and the operand), plus one RMW add. The Load inside the pattern
        // emits nothing (covered by the RMW rule).
        assert_eq!(red.instructions.len(), 4, "{:?}", red.instructions);
        assert!(red.instructions[3].starts_with("add"));
        assert_eq!(red.total_cost, Cost::finite(4));
    }

    #[test]
    fn plain_store_emits_full_sequence() {
        let (_, red) = reduce_src("(StoreI8 (ConstI8 0) (AddI8 (ConstI8 1) (ConstI8 2)))");
        // mov $0; mov $1; mov $2; add+mov; mov-store = 6 instructions.
        assert_eq!(red.instructions.len(), 6, "{:?}", red.instructions);
        assert_eq!(red.total_cost, Cost::finite(5));
    }

    #[test]
    fn vregs_are_fresh_and_wired() {
        let (_, red) = reduce_src("(StoreI8 (ConstI8 0) (AddI8 (ConstI8 1) (ConstI8 2)))");
        let text = red.instructions.join("\n");
        // Three consts allocate v0..v2; Add allocates v3.
        assert!(text.contains("mov $0, v0"), "{text}");
        assert!(text.contains("mov $1, v1"), "{text}");
        assert!(text.contains("mov $2, v2"), "{text}");
        assert!(text.contains("add v1, v2"), "{text}");
        assert!(text.contains("mov v3, (v0)"), "{text}");
    }

    #[test]
    fn applied_rules_follow_postorder() {
        let (g, red) = reduce_src("(StoreI8 (ConstI8 0) (AddI8 (ConstI8 1) (ConstI8 2)))");
        // Every applied pair must have the action of a child before its
        // parent; the last applied rule is the root's stmt rule.
        let (last_node, last_rule) = *red.applied.last().unwrap();
        assert_eq!(g.rule(last_rule).lhs, g.start());
        assert!(red.applied.iter().all(|&(n, _)| n <= last_node));
    }

    #[test]
    fn missing_rule_is_reported() {
        let g = Arc::new(parse_grammar(DEMO).unwrap().normalize());
        struct NoChooser;
        impl RuleChooser for NoChooser {
            fn rule_for(&self, _: NodeId, _: NtId) -> Option<NormalRuleId> {
                None
            }
        }
        let mut f = Forest::new();
        let root = parse_sexpr(&mut f, "(ConstI8 1)").unwrap();
        f.add_root(root);
        let mut out = Reduction::default();
        let err = reduce_tree(&f, &g, &NoChooser, root, g.start(), &mut out).unwrap_err();
        assert!(matches!(err, ReduceError::MissingRule { .. }));
    }

    #[test]
    fn display_renders_lines() {
        let (_, red) = reduce_src("(StoreI8 (ConstI8 0) (AddI8 (ConstI8 1) (ConstI8 2)))");
        let shown = red.to_string();
        assert_eq!(shown.lines().count(), red.instructions.len());
    }
}
