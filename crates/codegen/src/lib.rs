//! The **reducer**: the second pass of tree-parsing instruction selection.
//!
//! After the labeler has recorded, for every node, the optimal rule per
//! nonterminal, the reducer walks the derivation tree top-down from the
//! start nonterminal at each root, fires each rule's emission action in
//! bottom-up (post-order) position, and assembles the selected
//! instructions. It works identically over every labeler through the
//! [`RuleChooser`](odburg_core::RuleChooser) interface — which is how the
//! benchmarks can show that all optimal labelers produce *identical code*.
//!
//! # Emission templates
//!
//! A source rule may carry a template string; the template is rendered
//! once per application of the rule, after its operand derivations have
//! been reduced. `;` separates machine instructions within one template.
//! Placeholders:
//!
//! | placeholder | meaning |
//! |-------------|---------|
//! | `{dst}`     | a fresh virtual register holding the rule's result |
//! | `{a}` … `{d}` | results of the pattern's nonterminal leaves, in order (falls back to the leaf's payload for folded operands) |
//! | `{pa}` … `{pd}` | payload of the node bound to the corresponding nonterminal leaf |
//! | `{imm}`     | payload of the first payload-carrying operator node matched by the pattern (falls back to the root node's payload) |
//! | `{sym}`     | like `{imm}` but rendered as a symbol name |
//! | `{lbl}`     | payload of the matched root node (branch/jump targets) |
//!
//! Rules without a template pass their operand's value through (chain
//! rules) or produce no value (statements, addressing modes folded into
//! their consumer).

mod reduce;

pub use reduce::{reduce_forest, reduce_tree, ReduceError, Reduction, VReg};
