//! Quickstart: the complete pipeline on the paper's running example.
//!
//! Builds the 8-rule demo grammar, labels the read-modify-write tree with
//! the on-demand automaton, reduces it to AMD64-flavoured assembly, and
//! prints what the automaton learned along the way.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use odburg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine description: the running example of the paper, with
    //    the RMW rule guarded by a `memop` dynamic cost.
    let grammar = odburg::targets::demo();
    println!(
        "grammar `{}` ({} rules):",
        grammar.name(),
        grammar.rules().len()
    );
    print!("{grammar}");
    let normal = Arc::new(grammar.normalize());

    // 2. Two IR statements: one where the RMW store applies (same address
    //    on both sides) and one where it does not.
    let mut forest = Forest::new();
    let rmw = parse_sexpr(
        &mut forest,
        "(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 5)))",
    )?;
    forest.add_root(rmw);
    let plain = parse_sexpr(
        &mut forest,
        "(StoreI8 (AddrLocalP @y) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 5)))",
    )?;
    forest.add_root(plain);

    // 3. Label bottom-up. The automaton starts empty and builds exactly
    //    the states this forest needs.
    let mut automaton = OnDemandAutomaton::new(normal.clone());
    let labeling = automaton.label_forest(&forest)?;

    // 4. Reduce: walk the least-cost derivation and emit code.
    let chooser = labeling.chooser(&automaton);
    let code = reduce_forest(&forest, &normal, &chooser)?;
    println!("\nselected code (total cost {}):", code.total_cost);
    print!("{code}");

    // 5. What did that cost us?
    let stats = automaton.stats();
    let c = automaton.counters();
    println!("\nautomaton after one forest:");
    println!("  states:      {}", stats.states);
    println!("  transitions: {}", stats.transitions);
    println!("  signatures:  {}", stats.signatures);
    println!(
        "  lookups:     {} hits, {} misses",
        c.memo_hits, c.memo_misses
    );

    // Label the same forest again: pure fast path.
    automaton.reset_counters();
    automaton.label_forest(&forest)?;
    let c = automaton.counters();
    println!(
        "relabeling:    {} hits, {} misses (the automaton has converged)",
        c.memo_hits, c.memo_misses
    );
    Ok(())
}
