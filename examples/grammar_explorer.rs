//! Grammar explorer: inspect a machine description the way a back-end
//! author would while developing it.
//!
//! Prints grammar statistics, the normal form, the full offline automaton
//! size, and how quickly the on-demand automaton converges on a random
//! workload drawn from the grammar itself.
//!
//! Run with: `cargo run --release --example grammar_explorer [target]`
//! where `target` is one of demo, x86ish, riscish, sparcish, jvmish
//! (default: riscish).

use std::sync::Arc;

use odburg::grammar::analysis;
use odburg::prelude::*;
use odburg::workloads::random_workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "riscish".into());
    let Some(grammar) = odburg::targets::by_name(&name) else {
        eprintln!(
            "unknown target `{name}`; available: {}",
            odburg::targets::TARGET_NAMES.join(", ")
        );
        std::process::exit(1);
    };

    let stats = grammar.stats();
    println!("== grammar `{name}` =====================================");
    println!("  rules:             {}", stats.rules);
    println!("  chain rules:       {}", stats.chain_rules);
    println!("  dynamic rules:     {}", stats.dynamic_rules);
    println!("  nonterminals:      {}", stats.nonterminals);
    println!("  operators:         {}", stats.operators);
    println!("  normal rules:      {}", stats.normal_rules);
    println!("  normal nts:        {}", stats.normal_nonterminals);

    let normal = Arc::new(grammar.normalize());
    for diagnostic in analysis::analyze(&normal) {
        println!("  lint: {diagnostic}");
    }

    println!("\n== normal form (first 15 rules) ========================");
    for rule in normal.rules().iter().take(15) {
        let lhs = normal.nt_name(rule.lhs);
        match &rule.rhs {
            odburg::grammar::NormalRhs::Base { op, operands } => {
                let ops: Vec<&str> = operands.iter().map(|&n| normal.nt_name(n)).collect();
                println!("  {lhs}: {op}({})", ops.join(", "));
            }
            odburg::grammar::NormalRhs::Chain { from } => {
                println!("  {lhs}: {}", normal.nt_name(*from));
            }
        }
    }
    if normal.rules().len() > 15 {
        println!("  … {} more", normal.rules().len() - 15);
    }

    println!("\n== offline automaton (dynamic rules stripped) ==========");
    let fixed = Arc::new(grammar.without_dynamic_rules()?.normalize());
    match OfflineAutomaton::build(fixed, OfflineConfig::default()) {
        Ok(auto) => {
            let s = auto.stats();
            println!("  states:       {}", s.states);
            println!("  representers: {}", s.representers);
            println!("  transitions:  {}", s.transition_entries);
            println!("  table bytes:  {}", s.bytes);
            println!("  build time:   {:?}", s.build_time);
        }
        Err(e) => println!("  construction failed: {e}"),
    }

    println!("\n== on-demand convergence on a random workload ==========");
    let workload = random_workload(&normal, 0xBEEF, 2000);
    let mut auto = OnDemandAutomaton::new(normal.clone());
    let mut labeled = 0usize;
    let mut next_report = 50usize;
    // Label tree by tree so we can watch the automaton grow.
    for &root in workload.forest.roots() {
        let mut single = Forest::new();
        copy_subtree(&workload.forest, root, &mut single);
        auto.label_forest(&single)?;
        labeled += single.len();
        if labeled >= next_report {
            println!(
                "  after {:>7} nodes: {:>5} states, {:>6} transitions",
                labeled,
                auto.stats().states,
                auto.stats().transitions
            );
            next_report *= 2;
        }
    }
    let c = auto.counters();
    println!(
        "  final: {} states; hit rate {:.2}%",
        auto.stats().states,
        100.0 * c.memo_hits as f64 / (c.memo_hits + c.memo_misses) as f64
    );
    Ok(())
}

/// Copies one tree into a fresh forest (roots it too).
fn copy_subtree(src: &Forest, root: NodeId, dst: &mut Forest) {
    fn go(src: &Forest, id: NodeId, dst: &mut Forest) -> NodeId {
        let node = src.node(id);
        let children: Vec<NodeId> = node.children().iter().map(|&c| go(src, c, dst)).collect();
        let payload = match node.payload() {
            Payload::Sym(s) => Payload::Sym(dst.intern(src.symbol(s))),
            p => p,
        };
        dst.push(node.op(), &children, payload)
    }
    let new_root = go(src, root, dst);
    dst.add_root(new_root);
}
