//! A JIT-compiler scenario: one persistent on-demand automaton compiles a
//! stream of MiniC functions, then a team of compilation threads shares
//! the same automaton.
//!
//! This is the deployment the paper targets: the automaton is built
//! lazily *during* compilation, so the first methods pay a few state
//! computations and everything after runs at table-lookup speed.
//!
//! Run with: `cargo run --release --example jit_pipeline`

use std::sync::Arc;
use std::time::Instant;

use odburg::frontend::programs;
use odburg::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());

    // ---- Phase 1: sequential method stream --------------------------
    println!("phase 1: sequential JIT over the MiniC suite (x86ish)\n");
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>9} {:>7}",
        "method", "nodes", "misses", "hits", "states", "instrs"
    );
    let mut automaton = OnDemandAutomaton::new(normal.clone());
    for program in programs::all() {
        let forest = program.compile()?;
        automaton.reset_counters();
        let labeling = automaton.label_forest(&forest)?;
        let chooser = labeling.chooser(&automaton);
        let code = reduce_forest(&forest, &normal, &chooser)?;
        let c = automaton.counters();
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>9} {:>7}",
            program.name,
            forest.len(),
            c.memo_misses,
            c.memo_hits,
            automaton.stats().states,
            code.len()
        );
    }
    let warm_states = automaton.stats().states;
    println!("\nthe automaton converged to {warm_states} states; later methods are mostly hits.\n");

    // ---- Phase 2: concurrent compilation threads --------------------
    println!("phase 2: four threads share one automaton");
    let shared = Arc::new(SharedOnDemand::new(OnDemandAutomaton::new(normal.clone())));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            let normal = Arc::clone(&normal);
            scope.spawn(move || {
                for round in 0..3 {
                    for program in programs::all() {
                        let forest = program.compile().expect("programs compile");
                        let labeling = shared.label_forest(&forest).expect("labeling succeeds");
                        let chooser = labeling.chooser(shared.as_ref());
                        let code =
                            reduce_forest(&forest, &normal, &chooser).expect("reduction succeeds");
                        assert!(!code.is_empty());
                        let _ = (t, round);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = shared.stats();
    println!(
        "  4 threads x 3 rounds finished in {elapsed:?}; {} states, {} transitions",
        stats.states, stats.transitions
    );
    println!(
        "  (sequential warm automaton had {warm_states} states — shared threads converge to the same machine)"
    );
    Ok(())
}
