//! Dynamic costs in action — the flexibility an offline automaton cannot
//! offer.
//!
//! The same tree *shape* selects different instructions depending on
//! selection-time properties of the tree: immediate widths, and whether a
//! store's value reads the stored-to address (read-modify-write).
//! The example also shows what is lost when the dynamic rules are
//! stripped, which is exactly the burg/offline-automaton situation.
//!
//! Run with: `cargo run --example dynamic_costs`

use std::sync::Arc;

use odburg::prelude::*;

fn show(
    normal: &Arc<NormalGrammar>,
    automaton: &mut OnDemandAutomaton,
    title: &str,
    src: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut forest = Forest::new();
    let root = parse_sexpr(&mut forest, src)?;
    forest.add_root(root);
    let labeling = automaton.label_forest(&forest)?;
    let chooser = labeling.chooser(&*automaton);
    let code = reduce_forest(&forest, normal, &chooser)?;
    println!("{title}\n  {src}");
    for i in &code.instructions {
        println!("    {i}");
    }
    println!("  (cost {})\n", code.total_cost);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let mut auto = OnDemandAutomaton::new(normal.clone());

    println!("== immediate widths ==================================\n");
    show(
        &normal,
        &mut auto,
        "fits a 32-bit immediate -> short mov32 encoding:",
        "(AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 100))",
    )?;
    show(
        &normal,
        &mut auto,
        "too wide for imm32 -> full 64-bit constant load:",
        "(AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 100000000000))",
    )?;

    println!("== strength reduction ================================\n");
    show(
        &normal,
        &mut auto,
        "multiply by a power of two becomes a shift:",
        "(MulI8 (LoadI8 (AddrLocalP @x)) (ConstI8 8))",
    )?;
    show(
        &normal,
        &mut auto,
        "multiply by 7 stays a multiply:",
        "(MulI8 (LoadI8 (AddrLocalP @x)) (ConstI8 7))",
    )?;

    println!("== read-modify-write =================================\n");
    show(
        &normal,
        &mut auto,
        "x = x + k: one RMW add:",
        "(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))",
    )?;
    show(
        &normal,
        &mut auto,
        "y = x + k: different addresses, full sequence:",
        "(StoreI8 (AddrLocalP @y) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))",
    )?;

    println!("== the price of dropping dynamic rules ===============\n");
    let stripped = grammar.without_dynamic_rules()?;
    let stripped_normal = Arc::new(stripped.normalize());
    let mut stripped_auto = OnDemandAutomaton::new(stripped_normal.clone());
    show(
        &stripped_normal,
        &mut stripped_auto,
        "the same RMW tree without dynamic rules (burg's world):",
        "(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))",
    )?;
    println!(
        "dynamic-cost signatures interned by the flexible automaton: {}",
        auto.stats().signatures
    );
    Ok(())
}
