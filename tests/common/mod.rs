//! Shared helpers for the integration-test crates. Lives in a
//! subdirectory so cargo does not compile it as a test target of its
//! own; each test crate pulls it in with `mod common;`.

#![allow(dead_code)] // each test crate uses a different subset

use std::sync::Arc;

use odburg::grammar::{CostExpr, GrammarBuilder, Pattern};
use odburg::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but always well-formed grammar:
/// * every nonterminal has a leaf rule (so everything is derivable),
/// * random base rules over a small operator pool,
/// * random chain rules,
/// * optionally a dynamic "even constant" rule to exercise signatures.
pub fn random_grammar(seed: u64) -> Grammar {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GrammarBuilder::new(&format!("random-{seed}"));

    let num_nts = rng.gen_range(2..5usize);
    let nts: Vec<_> = (0..num_nts).map(|i| b.nt(&format!("n{i}"))).collect();

    let leaf_ops = [
        Op::new(OpKind::Const, TypeTag::I8),
        Op::new(OpKind::AddrLocal, TypeTag::P),
    ];
    let unary_ops = [
        Op::new(OpKind::Load, TypeTag::I8),
        Op::new(OpKind::Neg, TypeTag::I8),
        Op::new(OpKind::Com, TypeTag::I8),
    ];
    let binary_ops = [
        Op::new(OpKind::Add, TypeTag::I8),
        Op::new(OpKind::Sub, TypeTag::I8),
        Op::new(OpKind::Mul, TypeTag::I8),
        Op::new(OpKind::Store, TypeTag::I8),
    ];

    // Guaranteed leaf rule per nonterminal.
    for &nt in &nts {
        let op = leaf_ops[rng.gen_range(0..leaf_ops.len())];
        b.rule(
            nt,
            Pattern::op(op, vec![]),
            CostExpr::Fixed(rng.gen_range(0..4)),
            None,
        );
    }
    // Random base rules, sometimes with nested (multi-node) patterns.
    for _ in 0..rng.gen_range(3..10usize) {
        let lhs = nts[rng.gen_range(0..nts.len())];
        let leaf = |rng: &mut StdRng| Pattern::nt(nts[rng.gen_range(0..nts.len())]);
        let pattern = if rng.gen_bool(0.5) {
            let op = unary_ops[rng.gen_range(0..unary_ops.len())];
            if rng.gen_bool(0.25) {
                // Nested: unary over binary — splits into helper rules.
                let inner = binary_ops[rng.gen_range(0..binary_ops.len() - 1)];
                Pattern::op(
                    op,
                    vec![Pattern::op(inner, vec![leaf(&mut rng), leaf(&mut rng)])],
                )
            } else {
                Pattern::op(op, vec![leaf(&mut rng)])
            }
        } else {
            let op = binary_ops[rng.gen_range(0..binary_ops.len())];
            Pattern::op(op, vec![leaf(&mut rng), leaf(&mut rng)])
        };
        b.rule(lhs, pattern, CostExpr::Fixed(rng.gen_range(0..6)), None);
    }
    // Random chain rules (cycles allowed; the closure handles them).
    for _ in 0..rng.gen_range(0..3usize) {
        let lhs = nts[rng.gen_range(0..nts.len())];
        let from = nts[rng.gen_range(0..nts.len())];
        if lhs != from {
            b.rule(
                lhs,
                Pattern::nt(from),
                CostExpr::Fixed(rng.gen_range(0..3)),
                None,
            );
        }
    }
    // Sometimes a dynamic rule: "constant is even" applicability test.
    if rng.gen_bool(0.5) {
        let dc = b.bind_dyncost(
            "even",
            Arc::new(|forest: &Forest, node| match forest.node(node).payload() {
                Payload::Int(v) if v % 2 == 0 => RuleCost::Finite(0),
                _ => RuleCost::Infinite,
            }),
        );
        let lhs = nts[rng.gen_range(0..nts.len())];
        b.rule(
            lhs,
            Pattern::op(Op::new(OpKind::Const, TypeTag::I8), vec![]),
            CostExpr::Dynamic(dc),
            None,
        );
    }
    b.start(nts[0])
        .build()
        .expect("random grammars are well-formed")
}

/// Total optimal cost of a forest according to a chooser + reducer.
pub fn total_cost(forest: &Forest, normal: &Arc<NormalGrammar>, chooser: &dyn RuleChooser) -> Cost {
    odburg::codegen::reduce_forest(forest, normal, chooser)
        .expect("reduce")
        .total_cost
}
