//! Differential tests of the cluster tier: every job routed through a
//! 3-shard [`ShardCluster`] must reduce bit-identically to a fresh
//! single-process DP oracle — including jobs in flight across a
//! snapshot shipment and across a writer re-election — and no accepted
//! job may ever be lost, killed shard or not.

use std::collections::HashMap;
use std::sync::Arc;

use odburg::prelude::*;
use odburg::workloads::{builtin_traffic, TrafficJob};

/// The DP oracle's reduction of one job: instructions and total cost
/// from a fresh dynamic-programming labeler, no automata, no sharing.
fn oracle_reduce(
    oracles: &mut HashMap<String, (Arc<NormalGrammar>, DpLabeler)>,
    job: &TrafficJob,
) -> Reduction {
    let (normal, dp) = oracles.entry(job.target.clone()).or_insert_with(|| {
        let grammar = odburg::targets::by_name(&job.target).expect("builtin target");
        let normal = Arc::new(grammar.normalize());
        (Arc::clone(&normal), DpLabeler::new(normal))
    });
    let labeling = dp.label_forest(&job.forest).expect("oracle labels");
    odburg::codegen::reduce_forest(&job.forest, normal, &labeling).expect("oracle reduces")
}

fn assert_matches_oracle(
    oracles: &mut HashMap<String, (Arc<NormalGrammar>, DpLabeler)>,
    job: &TrafficJob,
    done: &CompletedJob,
) {
    let expected = oracle_reduce(oracles, job);
    let got = done.reduce().expect("cluster job reduces");
    assert_eq!(
        got.instructions, expected.instructions,
        "instructions diverge from DP oracle on {} ({})",
        job.target, done.ticket
    );
    assert_eq!(
        got.total_cost, expected.total_cost,
        "cost diverges from DP oracle on {}",
        job.target
    );
}

fn small_cluster() -> ShardCluster {
    ShardCluster::with_builtin_targets(ClusterConfig {
        shards: 3,
        vnodes: 64,
        server: ServerConfig {
            workers: 2,
            queue_cap: 1024,
            ..ServerConfig::default()
        },
    })
}

#[test]
fn three_shard_cluster_matches_dp_oracle_with_conservation() {
    let cluster = small_cluster();
    let jobs = builtin_traffic(11, 90);
    let mut oracles = HashMap::new();

    let mut pending = Vec::new();
    for job in &jobs {
        let accepted = cluster
            .submit(&job.target, job.forest.clone())
            .expect("queue is large enough");
        // Routing must agree with the writer lease: single-writer
        // discipline is enforced by where jobs go.
        assert_eq!(
            accepted.shard,
            cluster.writer(&job.target).expect("registered").shard
        );
        pending.push(accepted.handle);
    }
    for (job, handle) in jobs.iter().zip(pending) {
        let done = handle.wait();
        assert_matches_oracle(&mut oracles, job, &done);
    }

    let report = cluster.shutdown();
    assert!(report.conserved(), "conservation violated: {report:?}");
    assert_eq!(report.submitted, 90);
    assert_eq!(report.accepted, 90);
    assert_eq!(report.completed, 90);

    // Cluster-wide conservation is also derivable from telemetry alone.
    let mut tele = JobCounts::default();
    for (_, t) in cluster.shard_telemetries() {
        tele.merge(&t.totals());
    }
    assert_eq!(tele.submitted, tele.accepted + tele.rejected + tele.shed);
    assert_eq!(tele.submitted, 90);
}

#[test]
fn jobs_in_flight_straddle_a_shipment_and_replicas_stay_warm() {
    let cluster = small_cluster();
    let jobs = builtin_traffic(23, 60);
    let mut oracles = HashMap::new();

    // Warm the writers with the first half while shipping snapshots
    // between submissions — jobs are queued and in flight while
    // replicas swap shipped tables in.
    let (warmup, rest) = jobs.split_at(30);
    let mut pending = Vec::new();
    for (i, job) in warmup.iter().enumerate() {
        pending.push(cluster.submit(&job.target, job.forest.clone()).unwrap());
        if i % 7 == 6 {
            cluster.ship_target(&job.target).expect("mid-stream ship");
        }
    }
    for (job, sub) in warmup.iter().zip(pending.drain(..)) {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    // Ship everything, then pin each target to a replica and replay
    // traffic the writer has already seen: the replica must answer from
    // shipped tables with zero grow-path entries.
    for (target, result) in cluster.ship_all() {
        result.unwrap_or_else(|e| panic!("shipping {target} failed: {e}"));
    }
    for target in cluster.targets() {
        let writer = cluster.writer(&target).unwrap().shard;
        let replica = (0..3).find(|&s| s != writer).unwrap();
        cluster.pin(&target, replica).unwrap();
    }
    for job in warmup {
        let sub = cluster.submit(&job.target, job.forest.clone()).unwrap();
        let writer = cluster.writer(&job.target).unwrap().shard;
        assert_ne!(sub.shard, writer, "pin must override the ring");
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    // Unpinned fresh traffic still matches the oracle.
    for target in cluster.targets() {
        cluster.unpin(&target);
    }
    let mut pending = Vec::new();
    for job in rest {
        pending.push(cluster.submit(&job.target, job.forest.clone()).unwrap());
    }
    for (job, sub) in rest.iter().zip(pending) {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    let report = cluster.shutdown();
    assert!(report.conserved());
    assert!(report.shipments > 0, "no shipment was installed");
}

#[test]
fn restarted_shard_warm_starts_with_zero_grow_entries() {
    let cluster = small_cluster();
    let jobs = builtin_traffic(31, 40);
    let mut oracles = HashMap::new();

    // Warm every writer.
    let mut pending = Vec::new();
    for job in &jobs {
        pending.push(cluster.submit(&job.target, job.forest.clone()).unwrap());
    }
    for (job, sub) in jobs.iter().zip(pending) {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    // Broadcast the warm tables while every writer is alive: a failover
    // writer can only ship warm tables if it received them as a replica.
    for (target, result) in cluster.ship_all() {
        result.unwrap_or_else(|e| panic!("shipping {target} failed: {e}"));
    }

    // Kill a shard, then bring it back: it must warm-start from shipped
    // tables.
    let victim = 1;
    let killed = cluster.kill_shard(victim).expect("was alive");
    assert_eq!(killed.accepted, killed.completed + killed.deadline_missed);
    let warmed = cluster.restart_shard(victim).expect("restart");
    assert!(warmed > 0, "restart shipped no tables");

    // Pin warm traffic to the restarted shard; its masters must answer
    // entirely from the shipped tables — zero grow-path entries.
    let mut replayed = false;
    for job in &jobs {
        let lease = cluster.writer(&job.target).unwrap();
        if lease.shard == victim {
            continue; // pinning to the writer would not prove shipping
        }
        cluster.pin(&job.target, victim).unwrap();
        let sub = cluster.submit(&job.target, job.forest.clone()).unwrap();
        assert_eq!(sub.shard, victim);
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
        replayed = true;
    }
    assert!(replayed, "no warm traffic reached the restarted shard");

    let report = cluster.shutdown();
    assert!(report.conserved());
    // The restarted incarnation is the one that served the pinned
    // replay; its grow-path counters must be zero.
    let restarted = report
        .per_shard
        .iter()
        .rfind(|s| s.shard == victim && !s.killed)
        .expect("restarted incarnation reported");
    let counters = restarted.report.counters();
    assert_eq!(
        counters.states_built, 0,
        "restarted shard entered the grow path: {counters:?}"
    );
    assert_eq!(
        counters.memo_misses, 0,
        "restarted shard missed its shipped tables: {counters:?}"
    );
}

#[test]
fn writer_re_election_fences_the_zombie_and_loses_nothing() {
    let cluster = small_cluster();
    let jobs = builtin_traffic(47, 50);
    let mut oracles = HashMap::new();

    // Warm the writers, then capture a pre-election shipment from one
    // target's writer — the "zombie broadcast".
    let mut pending = Vec::new();
    for job in &jobs {
        pending.push(cluster.submit(&job.target, job.forest.clone()).unwrap());
    }
    for (job, sub) in jobs.iter().zip(pending) {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }
    let target = jobs[0].target.clone();
    let old_lease = cluster.writer(&target).unwrap();
    let zombie = {
        // A shipment the old writer prepared before it died: current
        // bytes, old lease epoch.
        let report = cluster.ship_target(&target).expect("pre-kill ship");
        assert_eq!(report.writer, old_lease);
        Shipment {
            target: target.clone(),
            writer_epoch: old_lease.epoch,
            bytes: Vec::new(), // never reached: the lease fence fires first
        }
    };

    // Kill the writer: in-flight jobs drain, the lease moves on with a
    // bumped epoch.
    let mut in_flight = Vec::new();
    for job in jobs.iter().filter(|j| j.target == target).take(5) {
        in_flight.push((
            job,
            cluster.submit(&job.target, job.forest.clone()).unwrap(),
        ));
    }
    let killed = cluster.kill_shard(old_lease.shard).expect("was alive");
    assert_eq!(
        killed.accepted,
        killed.completed + killed.deadline_missed,
        "kill dropped accepted jobs"
    );
    // Jobs accepted before the kill still resolve and still match.
    for (job, sub) in in_flight {
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    let new_lease = cluster.writer(&target).unwrap();
    assert_ne!(new_lease.shard, old_lease.shard);
    assert_eq!(new_lease.epoch, old_lease.epoch + 1);

    // The zombie's late broadcast is refused by the epoch fence on
    // every alive shard — a typed error, not a silent anything.
    for idx in 0..cluster.shard_count() {
        if !cluster.is_alive(idx) {
            continue;
        }
        match cluster.deliver_shipment(idx, &zombie) {
            Err(ShipError::StaleWriter {
                shipped, current, ..
            }) => {
                assert_eq!(shipped, old_lease.epoch);
                assert_eq!(current, new_lease.epoch);
            }
            other => panic!("zombie shipment not fenced: {other:?}"),
        }
    }

    // Traffic for the re-homed target flows to the new writer and still
    // matches the oracle.
    for job in jobs.iter().filter(|j| j.target == target) {
        let sub = cluster.submit(&job.target, job.forest.clone()).unwrap();
        assert_eq!(sub.shard, new_lease.shard);
        assert_matches_oracle(&mut oracles, job, &sub.handle.wait());
    }

    let report = cluster.shutdown();
    assert!(report.conserved());
    assert!(report.writer_elections > 6, "re-election not recorded");
    assert!(report.ship_rejects >= 2, "zombie rejections not recorded");
}

#[test]
fn routing_errors_are_typed() {
    let cluster = ShardCluster::new(ClusterConfig {
        shards: 2,
        ..ClusterConfig::default()
    });
    let mut f = Forest::new();
    let root = odburg::ir::parse_sexpr(&mut f, "(ConstI8 1)").unwrap();
    f.add_root(root);

    assert!(matches!(
        cluster.submit("nope", f.clone()),
        Err(ClusterSubmitError::Route(RouteError::UnknownTarget(_)))
    ));

    let grammar = odburg::targets::x86ish();
    cluster.register(&grammar).unwrap();
    cluster.kill_shard(0).unwrap();
    cluster.kill_shard(1).unwrap();
    assert!(matches!(
        cluster.submit(grammar.name(), f),
        Err(ClusterSubmitError::Route(RouteError::NoAliveShard(_)))
    ));
    let report = cluster.shutdown();
    assert!(report.conserved());
}
