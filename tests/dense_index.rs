//! Differential properties of the dense warm-path index against the
//! canonical `FxHashMap` tables it is derived from.
//!
//! The dense index (per-operator open-addressed transition slots, flat
//! projection table, signature probe — see `odburg_core::dense`) is a
//! *pure projection* of a snapshot's hash tables: every memoized key
//! must resolve to the same state through both structures, every unseen
//! key must miss through both, and the two warm walks built on top of
//! them must agree node for node. These properties are checked over
//! random grammars and random forests, in both child-projection modes,
//! and — because compaction rebuilds the index from remapped state ids
//! — across a `BudgetPolicy::Compact` epoch change.

mod common;

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use odburg::prelude::*;
use odburg::workloads::TreeSampler;

use common::random_grammar;

/// Labels `trees` sampled forests through a fresh shared automaton so
/// its snapshot memoizes a realistic mix of transitions, projections
/// and signatures.
fn warmed(
    seed: u64,
    project_children: bool,
    trees: usize,
) -> (Arc<NormalGrammar>, Vec<Forest>, SharedOnDemand) {
    let normal = Arc::new(random_grammar(seed).normalize());
    let shared = SharedOnDemand::new(OnDemandAutomaton::with_config(
        Arc::clone(&normal),
        OnDemandConfig {
            project_children,
            ..OnDemandConfig::default()
        },
    ));
    let mut sampler = TreeSampler::new(&normal, seed ^ 0xD15E);
    let forests: Vec<Forest> = (0..trees).map(|_| sampler.sample_forest(6)).collect();
    for forest in &forests {
        shared.label_forest(forest).expect("sampled forests label");
    }
    (normal, forests, shared)
}

/// Every memoized transition and projection resolves identically
/// through the dense index and the hash tables, and single-component
/// mutations of every memoized key (a near-collision stress for the
/// open-addressed probe) miss or hit identically.
fn assert_index_agrees(snap: &AutomatonSnapshot) {
    let transitions = snap.raw_transitions();
    assert!(!transitions.is_empty(), "warmed snapshot has transitions");
    for t in &transitions {
        assert_eq!(
            snap.lookup_raw_dense(t.op, t.kids, t.sig),
            Some(t.state),
            "memoized key missed the dense probe"
        );
        assert_eq!(snap.lookup_raw_hash(t.op, t.kids, t.sig), Some(t.state));
        for (dop, dk0, dk1, ds) in [(1, 0, 0, 0), (0, 1, 0, 0), (0, 0, 1, 0), (0, 0, 0, 1)] {
            let op = t.op.wrapping_add(dop);
            let kids = [t.kids[0].wrapping_add(dk0), t.kids[1].wrapping_add(dk1)];
            let sig = t.sig.wrapping_add(ds);
            assert_eq!(
                snap.lookup_raw_dense(op, kids, sig),
                snap.lookup_raw_hash(op, kids, sig),
                "mutated key ({op}, {kids:?}, {sig}) disagrees"
            );
        }
    }
    for p in snap.raw_projections() {
        assert_eq!(
            snap.project_raw_dense(p.full, p.op, p.pos),
            Some(p.projection)
        );
        assert_eq!(
            snap.project_raw_hash(p.full, p.op, p.pos),
            Some(p.projection)
        );
        let missed = (
            odburg::select::StateId(p.full.0.wrapping_add(1)),
            p.op,
            p.pos.wrapping_add(1),
        );
        assert_eq!(
            snap.project_raw_dense(missed.0, missed.1, missed.2),
            snap.project_raw_hash(missed.0, missed.1, missed.2)
        );
    }
}

/// Both warm walks answer the same forest with the same state prefix
/// and the same `NoCover` outcome; a fully warmed forest resolves
/// completely with zero misses through both.
fn assert_walks_agree(snap: &AutomatonSnapshot, forest: &Forest, fully_warm: bool) {
    let mut dense_counters = WorkCounters::new();
    let dense = snap.label_warm(forest, &mut dense_counters);
    let mut hash_counters = WorkCounters::new();
    let hash = snap.label_warm_hash(forest, &mut hash_counters);
    assert_eq!(dense.states, hash.states, "walk states diverge");
    assert_eq!(dense.nocover, hash.nocover, "walk NoCover outcomes diverge");
    if fully_warm {
        assert_eq!(dense.states.len(), forest.len(), "warm forest missed");
        assert!(dense.nocover.is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dense/hash agreement on every memoized key, near-miss mutations
    /// of them, random unseen keys, whole-forest walks and the
    /// signature probe — in both projection modes.
    #[test]
    fn dense_index_agrees_with_hash_tables(seed in 0u64..(1u64 << 48)) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA9EE);
        let project = rng.gen_bool(0.5);
        let (_, forests, shared) = warmed(seed, project, 10);
        let snap = shared.snapshot();
        assert_index_agrees(&snap);
        for forest in &forests {
            assert_walks_agree(&snap, forest, true);
        }
        for _ in 0..32 {
            let (op, kid0, kid1, sig) = (
                rng.gen_range(0..u16::MAX),
                rng.gen_range(0..u32::MAX),
                rng.gen_range(0..u32::MAX),
                rng.gen_range(0..u32::MAX),
            );
            prop_assert_eq!(
                snap.lookup_raw_dense(op, [kid0, kid1], sig),
                snap.lookup_raw_hash(op, [kid0, kid1], sig)
            );
        }
        for _ in 0..16 {
            let costs: Vec<RuleCost> = (0..rng.gen_range(0..4usize))
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        RuleCost::Infinite
                    } else {
                        RuleCost::Finite(rng.gen_range(0..8))
                    }
                })
                .collect();
            prop_assert_eq!(
                snap.find_signature_dense(&costs),
                snap.find_signature(&costs),
                "signature probe disagrees on {:?}", costs
            );
        }
    }

    /// A forest the snapshot has never seen stops both walks at the
    /// same node with the same prefix (the resume contract of the grow
    /// path does not depend on which structure answered).
    #[test]
    fn unseen_forests_miss_identically(seed in 0u64..(1u64 << 48)) {
        let (normal, _, shared) = warmed(seed, false, 4);
        let snap = shared.snapshot();
        let mut sampler = TreeSampler::new(&normal, seed ^ 0xF4E57);
        for _ in 0..6 {
            let fresh = sampler.sample_forest(6);
            assert_walks_agree(&snap, &fresh, false);
        }
    }

    /// Compaction rebuilds the dense index over a remapped state arena
    /// (new `StateId`s, retained-entry subsets): the rebuilt index must
    /// satisfy exactly the same agreement properties as the original.
    #[test]
    fn dense_index_survives_compact_rebuild(seed in 0u64..(1u64 << 48)) {
        // Measure how big the warm tables get, then replay the same
        // workload under half that budget so compaction must trigger.
        let (normal, forests, shared) = warmed(seed, false, 14);
        let full_bytes = shared.accounted_bytes().total();
        let compacting = SharedOnDemand::new(OnDemandAutomaton::with_config(
            Arc::clone(&normal),
            OnDemandConfig {
                budget_policy: BudgetPolicy::Compact {
                    byte_budget: (full_bytes / 2).max(2048),
                    retain_fraction: 0.5,
                },
                ..OnDemandConfig::default()
            },
        ));
        let mut sampler = TreeSampler::new(&normal, seed ^ 0xC0117AC7);
        for forest in &forests {
            compacting.label_forest(forest).expect("labels under budget");
        }
        for _ in 0..10 {
            let forest = sampler.sample_forest(8);
            compacting.label_forest(&forest).expect("labels under budget");
        }
        // Tiny grammars can stay under the floor budget; the rebuilt
        // index is only observable when compaction actually ran.
        if compacting.counters().compactions > 0 {
            let snap = compacting.snapshot();
            assert!(snap.epoch() > 0, "compaction advances the epoch");
            assert_index_agrees(&snap);
            // Forests labeled through the compacting automaton most
            // recently are warm in the fresh epoch; both walks must
            // agree on them against the rebuilt index.
            let warm = sampler.sample_forest(8);
            compacting.label_forest(&warm).expect("labels");
            let snap = compacting.snapshot();
            assert_walks_agree(&snap, &warm, true);
        }
    }
}
