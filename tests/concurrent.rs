//! Stress tests for the snapshot-based concurrent labeling core: many
//! threads hammer one [`SharedOnDemand`] with random grammar-sampled
//! forests, and every labeling must be bit-identical (state contents,
//! per-nonterminal costs, chosen rules) to what the single-threaded
//! [`OnDemandAutomaton`] computes for the same forest.

use std::sync::Arc;

use odburg::prelude::*;
use odburg::workloads::TreeSampler;

/// Per-nonterminal `(normalized cost, chosen rule)` pairs of one node.
type DecisionRecord = Vec<(u32, Option<u32>)>;
/// One record per node of one forest.
type ForestRecords = Vec<DecisionRecord>;

/// The full per-node decision record: for every nonterminal the
/// normalized cost and the chosen rule. Two labelings that agree on this
/// are bit-identical for every consumer (reducer included).
fn record(data: &odburg::select::StateData, num_nts: usize) -> DecisionRecord {
    (0..num_nts)
        .map(|i| {
            let nt = odburg::grammar::NtId(i as u16);
            (data.cost(nt).raw(), data.rule(nt).map(|r| r.0))
        })
        .collect()
}

fn stress_target(target: &str, threads: usize, forests_per_thread: usize) {
    let grammar = odburg::targets::by_name(target).unwrap();
    let normal = Arc::new(grammar.normalize());
    let num_nts = normal.num_nts();

    // Pre-sample every thread's forests deterministically so the
    // single-threaded reference can replay them.
    let all_forests: Vec<Vec<Forest>> = (0..threads)
        .map(|t| {
            let mut sampler = TreeSampler::new(&normal, 0xC0FFEE ^ (t as u64) << 8);
            (0..forests_per_thread)
                .map(|_| sampler.sample_forest(6))
                .collect()
        })
        .collect();

    let shared = Arc::new(SharedOnDemand::new(OnDemandAutomaton::new(normal.clone())));

    // Concurrent run: collect each forest's full decision records.
    let concurrent: Vec<Vec<ForestRecords>> = std::thread::scope(|scope| {
        let handles: Vec<_> = all_forests
            .iter()
            .map(|forests| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    forests
                        .iter()
                        .map(|forest| {
                            let pinned = shared.label_forest_pinned(forest).unwrap();
                            forest
                                .iter()
                                .map(|(id, _)| record(pinned.state_data(id), num_nts))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Single-threaded reference run over the same forests.
    let mut reference = OnDemandAutomaton::new(normal.clone());
    for (t, forests) in all_forests.iter().enumerate() {
        for (i, forest) in forests.iter().enumerate() {
            let labeling = reference.label_forest(forest).unwrap();
            for (id, _) in forest.iter() {
                let expect = record(reference.state(labeling.state_of(id)), num_nts);
                assert_eq!(
                    concurrent[t][i][id.index()],
                    expect,
                    "{target}: thread {t} forest {i} node {id} diverged from \
                     the single-threaded automaton"
                );
            }
        }
    }

    // The shared automaton converged to the same machine: identical
    // state/transition counts as the reference that saw every forest.
    let shared_stats = shared.stats();
    let ref_stats = reference.stats();
    assert_eq!(
        shared_stats.states, ref_stats.states,
        "{target}: state count"
    );
    assert_eq!(
        shared_stats.signatures, ref_stats.signatures,
        "{target}: signature count"
    );
}

#[test]
fn snapshot_path_matches_single_threaded_on_x86ish() {
    stress_target("x86ish", 8, 12);
}

#[test]
fn snapshot_path_matches_single_threaded_on_riscish() {
    stress_target("riscish", 4, 16);
}

#[test]
fn snapshot_path_matches_single_threaded_on_jvmish() {
    stress_target("jvmish", 8, 8);
}

#[test]
fn warm_shared_path_takes_no_writer_trips() {
    // After a full warmup pass, relabeling the same forests must answer
    // everything from the published snapshot: no new publications, all
    // memo hits.
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let mut sampler = TreeSampler::new(&normal, 0xAB);
    let forests: Vec<Forest> = (0..10).map(|_| sampler.sample_forest(5)).collect();

    let shared = Arc::new(SharedOnDemand::new(OnDemandAutomaton::new(normal)));
    for f in &forests {
        shared.label_forest(f).unwrap();
    }
    let published = shared.snapshots_published();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let forests = &forests;
            scope.spawn(move || {
                for f in forests {
                    shared.label_forest(f).unwrap();
                }
            });
        }
    });
    assert_eq!(
        shared.snapshots_published(),
        published,
        "warm relabeling must not publish (i.e. must not take the writer lock)"
    );
}

#[test]
fn concurrent_flushes_stay_correct() {
    // Tiny budget + Flush policy + concurrent threads: epochs advance
    // under the readers' feet, and every labeling must still reduce to
    // the dp-optimal cost.
    let grammar = odburg::targets::jvmish();
    let normal = Arc::new(grammar.normalize());
    let mut sampler = TreeSampler::new(&normal, 0xF1);
    let forests: Vec<Forest> = (0..12).map(|_| sampler.sample_forest(4)).collect();

    // Reference costs from dp.
    let mut dp = DpLabeler::new(normal.clone());
    let expected: Vec<Cost> = forests
        .iter()
        .map(|f| {
            let l = dp.label_forest(f).unwrap();
            odburg::codegen::reduce_forest(f, &normal, &l)
                .unwrap()
                .total_cost
        })
        .collect();

    let auto = OnDemandAutomaton::with_config(
        normal.clone(),
        OnDemandConfig {
            // Between the largest single forest (34 states) and the
            // whole workload (46): each forest survives its own relabel,
            // but the set keeps forcing flushes.
            state_budget: 36,
            budget_policy: BudgetPolicy::Flush,
            ..OnDemandConfig::default()
        },
    );
    let shared = Arc::new(SharedOnDemand::new(auto));

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let shared = Arc::clone(&shared);
            let normal = Arc::clone(&normal);
            let forests = &forests;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for (i, f) in forests.iter().enumerate() {
                        let pinned = shared.label_forest_pinned(f).unwrap();
                        let cost = odburg::codegen::reduce_forest(f, &normal, &pinned.chooser())
                            .unwrap()
                            .total_cost;
                        assert_eq!(
                            cost, expected[i],
                            "round {round} forest {i}: flush broke optimality"
                        );
                    }
                }
            });
        }
    });
    assert!(
        shared.stats().flushes > 0,
        "the tiny budget must actually force flushes"
    );
}

#[test]
fn registry_churn_keeps_retired_snapshots_bounded() {
    // The hazard-pointer `arc_swap` shim under service-shaped registry
    // churn: worker threads keep submitting and draining batches through
    // a SelectorService whose master re-publishes a snapshot on nearly
    // every job (a value-dependent dynamic cost interns a fresh
    // signature per distinct constant), while a dedicated writer thread
    // churns the same master directly. Throughout:
    //
    // * no labeling may observe a torn snapshot — every drained job must
    //   reduce to exactly the DpLabeler-optimal cost, and
    // * `snapshots_retained()` must stay bounded by what can still be
    //   referenced (live pins + readers mid-forest), never grow with the
    //   publication count.
    use odburg::service::{SelectorService, ServiceConfig};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let mut grammar = odburg::grammar::parse_grammar(
        r#"
        %start stmt
        %dyncost val
        reg: ConstI8 [val]
        reg: AddI8(reg, reg) (1)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .unwrap();
    // The residue space is wide enough that the constant ranges below
    // (drainers < 32_000, writer < 45_000, final probe above both) map
    // to *disjoint* cost residues — so the final probe is guaranteed to
    // intern a fresh signature, publish, and prune.
    grammar
        .bind_dyncost(
            "val",
            Arc::new(|forest: &Forest, node| {
                let v = forest.node(node).payload().as_int().unwrap_or(0);
                RuleCost::Finite((v.unsigned_abs() % 50_000) as u16)
            }),
        )
        .unwrap();
    let normal = Arc::new(grammar.normalize());

    let svc = Arc::new(SelectorService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    svc.register_normal("churn", Arc::clone(&normal)).unwrap();
    let shared = svc.shared("churn").unwrap();

    let forest_for = |k: i64| {
        let mut f = Forest::new();
        let root = odburg::ir::parse_sexpr(
            &mut f,
            &format!(
                "(StoreI8 (ConstI8 {k}) (AddI8 (ConstI8 {}) (ConstI8 1)))",
                k + 1
            ),
        )
        .unwrap();
        f.add_root(root);
        f
    };
    // The optimal cost is value-dependent; oracle it per constant.
    let dp_cost = |f: &Forest| {
        let mut dp = DpLabeler::new(Arc::clone(&normal));
        let l = dp.label_forest(f).unwrap();
        odburg::codegen::reduce_forest(f, &normal, &l)
            .unwrap()
            .total_cost
    };

    const DRAIN_THREADS: i64 = 4;
    const ROUNDS: i64 = 12;
    const JOBS_PER_ROUND: i64 = 4;
    let max_retained = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // The writer: churns the master directly, re-publishing
        // snapshots underneath the draining batches, and samples the
        // retire-list length while doing so.
        {
            let shared = Arc::clone(&shared);
            let stop = &stop;
            let max_retained = &max_retained;
            scope.spawn(move || {
                let mut k = 32_000;
                while !stop.load(Ordering::Relaxed) && k < 45_000 {
                    shared.label_forest(&forest_for(k)).unwrap();
                    k += 1;
                    max_retained.fetch_max(shared.snapshots_retained(), Ordering::Relaxed);
                }
            });
        }
        let handles: Vec<_> = (0..DRAIN_THREADS)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let dp_cost = &dp_cost;
                let forest_for = &forest_for;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        for j in 0..JOBS_PER_ROUND {
                            // Distinct constants per (thread, round, job):
                            // almost every job takes the grow path.
                            let k = t * 10_000 + round * 100 + j;
                            svc.submit("churn", forest_for(k)).unwrap();
                        }
                        // Concurrent drains race for each other's jobs;
                        // whatever this drain receives must be untorn.
                        let report = svc.drain();
                        for result in &report.results {
                            let red = result.reduce().unwrap_or_else(|e| {
                                panic!("thread {t} round {round}: torn labeling: {e}")
                            });
                            assert_eq!(
                                red.total_cost,
                                dp_cost(&result.forest),
                                "thread {t} round {round}: labeling disagrees with dp"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let published = shared.snapshots_published();
    assert!(
        published >= (DRAIN_THREADS * ROUNDS) as usize,
        "churn workload must actually publish (got {published})"
    );
    // Bounded while under load: at most one pinned snapshot per
    // in-flight job (each drain pins JOBS_PER_ROUND * DRAIN_THREADS at
    // worst) plus a guard per thread — far below the publication count.
    let bound = (DRAIN_THREADS * JOBS_PER_ROUND * DRAIN_THREADS + DRAIN_THREADS + 2) as usize;
    let observed = max_retained
        .load(Ordering::Relaxed)
        .max(shared.snapshots_retained());
    assert!(
        observed <= bound,
        "retire list grew with publications: {observed} retained (bound {bound}, {published} published)"
    );
    // Quiescent: with every pin dropped, the next publication reclaims
    // all but what a reader could still hold. The probe constant's cost
    // residue is outside every range used above, so this labeling is
    // guaranteed to intern a new signature and publish (i.e. prune).
    let published_before_probe = shared.snapshots_published();
    shared.label_forest(&forest_for(45_001)).unwrap();
    assert!(
        shared.snapshots_published() > published_before_probe,
        "probe must publish"
    );
    assert!(
        shared.snapshots_retained() <= 1,
        "quiescent retire list must collapse, got {}",
        shared.snapshots_retained()
    );
}
