//! Property tests of the table-persistence format: round-trips must
//! reproduce labelings bit-identically (including projection mode and a
//! non-empty dynamic-cost signature interner), and damaged files must be
//! rejected — never mislabeled, never a panic.

use std::sync::Arc;

use odburg::prelude::*;
use odburg::select::persist;
use proptest::prelude::*;

/// Warms an automaton for x86ish (which has dynamic-cost rules, so the
/// signature interner is exercised) on a seed-dependent random workload,
/// in direct or projection mode.
fn warmed(seed: u64) -> (OnDemandAutomaton, Forest) {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let config = OnDemandConfig {
        project_children: seed % 2 == 1,
        ..OnDemandConfig::default()
    };
    let mut auto = OnDemandAutomaton::with_config(Arc::clone(&normal), config);
    let workload = odburg::workloads::random_workload(&normal, seed, 40);
    auto.label_forest(&workload.forest)
        .expect("workload labels");
    (auto, workload.forest)
}

fn exported(auto: &OnDemandAutomaton) -> Vec<u8> {
    let mut bytes = Vec::new();
    persist::export_snapshot(&auto.snapshot(), &mut bytes).expect("export succeeds");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn round_trip_reproduces_labelings_bit_identically(seed in 0u64..512) {
        let (mut auto, forest) = warmed(seed);
        let bytes = exported(&auto);

        let imported = persist::import_snapshot(
            &bytes[..],
            Arc::clone(auto.grammar()),
            auto.config(),
        )
        .expect("import succeeds");
        prop_assert_eq!(imported.stats(), auto.snapshot().stats());
        // Random payloads hit the dynamic-cost rules, so the interner
        // carries real signatures through the round-trip.
        prop_assert!(imported.stats().signatures > 1);

        let mut warm = OnDemandAutomaton::from_snapshot(&imported);
        let warm_labeling = warm.label_forest(&forest).expect("warm labels");
        prop_assert_eq!(
            warm.counters().memo_misses, 0,
            "everything the exporter saw must hit after import"
        );
        let original = auto.label_forest(&forest).expect("original labels");
        prop_assert_eq!(warm_labeling, original);
    }

    #[test]
    fn truncated_files_are_rejected(seed in 0u64..256) {
        let (auto, _) = warmed(seed % 4);
        let bytes = exported(&auto);
        let cut = (seed as usize * 131) % bytes.len();
        let err = persist::import_snapshot(
            &bytes[..cut],
            Arc::clone(auto.grammar()),
            auto.config(),
        )
        .expect_err("truncated file must be rejected");
        prop_assert!(matches!(
            err,
            persist::PersistError::Truncated | persist::PersistError::BadMagic
        ));
    }

    #[test]
    fn corrupted_files_are_rejected(seed in 0u64..256) {
        let (auto, _) = warmed(seed % 4);
        let mut bytes = exported(&auto);
        let pos = (seed as usize * 257) % bytes.len();
        bytes[pos] ^= 1 << (seed % 8);
        if persist::import_snapshot(&bytes[..], Arc::clone(auto.grammar()), auto.config()).is_ok() {
            // The only flip that can survive every integrity check is one
            // that flipped nothing.
            prop_assert_eq!(bytes, exported(&auto));
        }
    }
}

#[test]
fn cross_config_and_cross_grammar_imports_are_rejected() {
    let (direct, _) = warmed(0);
    let bytes = exported(&direct);

    let projected = OnDemandConfig {
        project_children: true,
        ..direct.config()
    };
    assert!(matches!(
        persist::import_snapshot(&bytes[..], Arc::clone(direct.grammar()), projected),
        Err(persist::PersistError::ConfigMismatch { .. })
    ));

    let other = Arc::new(odburg::targets::riscish().normalize());
    assert!(matches!(
        persist::import_snapshot(&bytes[..], other, direct.config()),
        Err(persist::PersistError::GrammarMismatch { .. })
    ));
}

/// The shipping path and the file path must produce and consume the
/// same bytes: a snapshot streamed through `write_tables_to`, framed
/// over a real socket, and read back with `read_tables_from` is
/// bit-identical to a file export of the same snapshot — table
/// shipping is a transport, not a re-encoding.
#[test]
fn socket_shipped_bytes_match_a_file_export_bit_identically() {
    use std::io::{Read, Write};

    let (auto, forest) = warmed(3);
    let snapshot = Arc::new(auto.snapshot());

    // File path.
    let dir = std::env::temp_dir().join(format!("odburg-ship-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("shipped.odbt");
    persist::save_tables(&snapshot, &path).expect("save");
    let file_bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_dir_all(&dir).ok();

    // Shipping path: stream the same snapshot over a socketpair with
    // length-prefixed framing, exactly as the cluster transport does.
    let (mut tx, mut rx) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let mut wire = Vec::new();
    persist::write_tables_to(&snapshot, &mut wire).expect("stream export");
    let sender = std::thread::spawn(move || {
        tx.write_all(&(wire.len() as u64).to_le_bytes()).unwrap();
        tx.write_all(&wire).unwrap();
    });
    let mut len = [0u8; 8];
    rx.read_exact(&mut len).expect("length prefix");
    let mut shipped = vec![0u8; u64::from_le_bytes(len) as usize];
    rx.read_exact(&mut shipped).expect("payload");
    sender.join().expect("sender thread");

    assert_eq!(shipped, file_bytes, "shipped bytes differ from file export");

    // And the shipped bytes import to an equivalent snapshot.
    let imported =
        persist::read_tables_from(&shipped[..], Arc::clone(auto.grammar()), auto.config())
            .expect("import shipped bytes");
    assert_eq!(imported.stats(), snapshot.stats());
    let mut from_wire = OnDemandAutomaton::from_snapshot(&imported);
    let relabeled = from_wire.label_forest(&forest).expect("warm relabel");
    let mut from_file = OnDemandAutomaton::from_snapshot(&snapshot);
    let original = from_file.label_forest(&forest).expect("original relabel");
    for (id, _) in forest.iter() {
        assert_eq!(relabeled.state_of(id), original.state_of(id));
    }
}
