//! The JIT deployment scenario: a persistent, shared on-demand automaton
//! serving concurrent compilation threads.

use std::sync::Arc;

use odburg::frontend::programs;
use odburg::prelude::*;

fn dp_costs_per_program(normal: &Arc<NormalGrammar>) -> Vec<(String, Cost)> {
    let mut dp = DpLabeler::new(normal.clone());
    programs::all()
        .iter()
        .map(|p| {
            let forest = p.compile().unwrap();
            let labeling = dp.label_forest(&forest).unwrap();
            let cost = odburg::codegen::reduce_forest(&forest, normal, &labeling)
                .unwrap()
                .total_cost;
            (p.name.to_owned(), cost)
        })
        .collect()
}

#[test]
fn shared_automaton_serves_concurrent_threads_correctly() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let expected = dp_costs_per_program(&normal);
    let shared = Arc::new(SharedOnDemand::new(OnDemandAutomaton::new(normal.clone())));

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            let normal = Arc::clone(&normal);
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..2 {
                    for (i, program) in programs::all().iter().enumerate() {
                        let forest = program.compile().unwrap();
                        let labeling = shared.label_forest(&forest).unwrap();
                        let chooser = labeling.chooser(shared.as_ref());
                        let cost = odburg::codegen::reduce_forest(&forest, &normal, &chooser)
                            .unwrap()
                            .total_cost;
                        assert_eq!(
                            cost, expected[i].1,
                            "round {round}: {} cost mismatch under sharing",
                            expected[i].0
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn shared_automaton_converges_once() {
    let grammar = odburg::targets::jvmish();
    let normal = Arc::new(grammar.normalize());
    let shared = SharedOnDemand::new(OnDemandAutomaton::new(normal));
    let suite = programs::combined_forest().unwrap();
    shared.label_forest(&suite).unwrap();
    let states_after_first = shared.stats().states;
    for _ in 0..3 {
        shared.label_forest(&suite).unwrap();
    }
    assert_eq!(
        shared.stats().states,
        states_after_first,
        "relabeling must not grow the automaton"
    );
}

#[test]
fn incremental_label_node_matches_forest_labeling() {
    // A JIT that labels nodes as it builds them gets the same states as
    // one that labels whole forests.
    let grammar = odburg::targets::jvmish();
    let normal = Arc::new(grammar.normalize());
    let forest = programs::by_name("fact").unwrap().compile().unwrap();

    let mut whole = OnDemandAutomaton::new(normal.clone());
    let labeling = whole.label_forest(&forest).unwrap();

    let mut incremental = OnDemandAutomaton::new(normal);
    let mut states = Vec::new();
    for (id, node) in forest.iter() {
        let kids: Vec<_> = node.children().iter().map(|c| states[c.index()]).collect();
        states.push(incremental.label_node(&forest, id, &kids).unwrap());
    }
    assert_eq!(labeling.states(), &states[..]);
}
