//! Differential fuzzing of the selection service: proptest-generated
//! random grammars and forests go through [`SelectorService`]'s batch
//! path (worker pool, snapshot pinning, registry), and every result is
//! cross-checked **bit-identically** — full instruction sequence and
//! total cost — against a fresh [`DpLabeler`] oracle built for just
//! that job. The service is allowed no deviation at all: the concurrent
//! fast path, the grow path, projection-mode masters and mid-batch
//! registration must all be invisible in the output.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use odburg::prelude::*;
use odburg::service::SelectorService;
use odburg::workloads::TreeSampler;

use common::random_grammar;

/// The oracle: a fresh iburg-style dynamic-programming labeler, built
/// from scratch for one forest, reduced to instructions.
fn dp_reduction(forest: &Forest, normal: &Arc<NormalGrammar>) -> Reduction {
    let mut dp = DpLabeler::new(Arc::clone(normal));
    let labeling = dp.label_forest(forest).expect("dp labels sampled trees");
    odburg::codegen::reduce_forest(forest, normal, &labeling).expect("dp reduces")
}

fn two_workers() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }
}

proptest! {
    // 256 cases x 4 jobs: the differential surface the acceptance
    // criteria ask for, on every run.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn service_batches_agree_bit_identically_with_dp(seed in 0u64..1_000_000) {
        let svc = SelectorService::new(two_workers());
        let alpha = Arc::new(random_grammar(seed).normalize());
        let beta = Arc::new(random_grammar(seed ^ 0x5EED).normalize());
        svc.register_normal("alpha", Arc::clone(&alpha)).unwrap();
        // One projection-mode master per batch: lazy representer states
        // must be just as invisible as the direct tables.
        svc.register_with_mode(
            "beta",
            Arc::clone(&beta),
            OnDemandConfig { project_children: true, ..OnDemandConfig::default() },
        )
        .unwrap();

        let mut expected: Vec<(Ticket, Arc<NormalGrammar>, Forest)> = Vec::new();
        let mut enqueue = |svc: &SelectorService, name: &str, normal: &Arc<NormalGrammar>, salt: u64| {
            let mut sampler = TreeSampler::new(normal, seed ^ salt);
            let forest = sampler.sample_forest(8);
            let ticket = svc.submit(name, forest.clone()).unwrap();
            expected.push((ticket, Arc::clone(normal), forest));
        };
        enqueue(&svc, "alpha", &alpha, 0xA1);
        enqueue(&svc, "beta", &beta, 0xB2);
        // Mid-batch registration: a third grammar joins while jobs are
        // already queued, and serves the same batch.
        let gamma = Arc::new(random_grammar(seed ^ 0xC0C0).normalize());
        svc.register_normal("gamma", Arc::clone(&gamma)).unwrap();
        enqueue(&svc, "gamma", &gamma, 0xC3);
        // And the first target again, now against warmed tables.
        enqueue(&svc, "alpha", &alpha, 0xA4);

        let report = svc.drain();
        prop_assert_eq!(report.results.len(), expected.len());
        prop_assert_eq!(report.failed(), 0);
        prop_assert_eq!(svc.pending(), 0);

        for (result, (ticket, normal, forest)) in report.results.iter().zip(&expected) {
            prop_assert_eq!(result.ticket, *ticket);
            prop_assert_eq!(result.forest.len(), forest.len());
            let got = result.reduce().expect("service job reduces");
            let want = dp_reduction(forest, normal);
            prop_assert_eq!(
                &got.instructions,
                &want.instructions,
                "seed {}: service and dp chose different code for {}",
                seed,
                result.ticket
            );
            prop_assert_eq!(got.total_cost, want.total_cost, "seed {}", seed);
        }

        // The per-target accounting covers exactly the submitted jobs.
        let jobs_accounted: usize = report.per_target.iter().map(|t| t.jobs).sum();
        prop_assert_eq!(jobs_accounted, expected.len());
        for t in &report.per_target {
            prop_assert_eq!(t.failed, 0);
            prop_assert!(t.epochs.is_some());
        }
    }

    #[test]
    fn service_reports_uncoverable_jobs_without_poisoning_the_batch(seed in 0u64..1_000_000) {
        // A forest using an operator the grammar has no rule for must
        // come back as a per-job NoCover, while every other job in the
        // same batch still matches the oracle.
        let svc = SelectorService::new(two_workers());
        let normal = Arc::new(random_grammar(seed).normalize());
        svc.register_normal("only", Arc::clone(&normal)).unwrap();

        let mut sampler = TreeSampler::new(&normal, seed ^ 0x0DD);
        let good = sampler.sample_forest(6);
        svc.submit("only", good.clone()).unwrap();

        let mut bad = Forest::new();
        let root = parse_sexpr(&mut bad, "(MulF8 (ConstF8 #1.5) (ConstF8 #2.5))").unwrap();
        bad.add_root(root);
        svc.submit("only", bad).unwrap();

        let report = svc.drain();
        prop_assert_eq!(report.failed(), 1);
        prop_assert!(report.results[0].outcome.is_ok());
        prop_assert!(matches!(
            report.results[1].outcome,
            Err(LabelError::NoCover { .. })
        ));
        let got = report.results[0].reduce().expect("good job reduces");
        let want = dp_reduction(&good, &normal);
        prop_assert_eq!(&got.instructions, &want.instructions);
        prop_assert_eq!(got.total_cost, want.total_cost);
    }
}
