//! The unified `Labeler` trait as the single entry point: every
//! selection strategy is constructed from a runtime value, driven
//! through the trait, and reduced through the strategy-agnostic chooser
//! — on every built-in target.

use std::sync::Arc;

use odburg::prelude::*;
use odburg::strategy::{AnyLabeler, Strategy};
use odburg::workloads::random_workload;

/// Labels and reduces through nothing but the trait surface.
fn run_via_trait<L: Labeler>(labeler: &mut L, forest: &Forest) -> Result<L::Output, LabelError> {
    labeler.reset_counters();
    let out = labeler.label_forest(forest)?;
    assert!(labeler.counters().nodes >= forest.len() as u64);
    out_ok(labeler.name());
    Ok(out)
}

fn out_ok(name: &str) {
    assert!(!name.is_empty());
}

#[test]
fn all_strategies_run_through_the_trait_on_all_targets() {
    for grammar in odburg::targets::all() {
        let normal = Arc::new(grammar.normalize());
        let workload = random_workload(&normal, 7, 12);
        let forest = &workload.forest;

        // dp is the optimality reference.
        let mut dp = AnyLabeler::build_normal(Strategy::Dp, normal.clone()).unwrap();
        let dp_labeling = run_via_trait(&mut dp, forest).unwrap();
        let dp_cost = odburg::codegen::reduce_forest(forest, &normal, &dp.chooser(&dp_labeling))
            .unwrap()
            .total_cost;

        for strategy in Strategy::ALL {
            let mut labeler = match AnyLabeler::build_normal(strategy, normal.clone()) {
                Ok(l) => l,
                Err(e) => panic!("{}/{strategy}: cannot build: {e}", grammar.name()),
            };
            let labeling = run_via_trait(&mut labeler, forest)
                .unwrap_or_else(|e| panic!("{}/{strategy}: {e}", grammar.name()));
            let chooser = labeler.chooser(&labeling);
            let cost = odburg::codegen::reduce_forest(forest, &labeler.grammar(), &chooser)
                .unwrap_or_else(|e| panic!("{}/{strategy}: reduce: {e}", grammar.name()))
                .total_cost;

            match strategy {
                // The optimal selectors must agree with dp exactly.
                Strategy::OnDemand
                | Strategy::OnDemandProjected
                | Strategy::Shared
                | Strategy::Dp => {
                    assert_eq!(cost, dp_cost, "{}/{strategy}", grammar.name());
                }
                // Offline (stripped) and macro are optimal-or-worse.
                Strategy::Offline | Strategy::Macro => {
                    assert!(cost >= dp_cost, "{}/{strategy}", grammar.name());
                }
            }
        }
    }
}

#[test]
fn strategy_is_a_runtime_value() {
    // The whole pipeline parameterized by a parsed string — what the CLI
    // flag does, without the CLI.
    let grammar = odburg::targets::x86ish();
    let forest = odburg::frontend::compile("fn inc(x) { return x + 1; }").unwrap();
    let mut costs = Vec::new();
    for name in ["dp", "ondemand", "shared"] {
        let strategy: Strategy = name.parse().unwrap();
        let red = odburg::select_with(strategy, &grammar, &forest).unwrap();
        costs.push(red.total_cost);
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
}

#[test]
fn shared_strategy_is_trait_driven_and_concurrent_safe() {
    // The shared labeler built through the strategy layer is the same
    // snapshot core the concurrency tests exercise; a quick end-to-end
    // spot check that trait-driven use composes with warm reuse.
    let grammar = odburg::targets::riscish();
    let normal = Arc::new(grammar.normalize());
    let mut shared = AnyLabeler::build_normal(Strategy::Shared, normal.clone()).unwrap();
    let workload = random_workload(&normal, 21, 10);

    let first = shared.label_forest(&workload.forest).unwrap();
    shared.reset_counters();
    let second = shared.label_forest(&workload.forest).unwrap();
    let counters = shared.counters();
    assert_eq!(counters.memo_misses, 0, "warm pass must be all hits");
    let (c1, c2) = (shared.chooser(&first), shared.chooser(&second));
    for (id, _) in workload.forest.iter() {
        assert_eq!(
            c1.rule_for(id, normal.start()),
            c2.rule_for(id, normal.start())
        );
    }
}
