//! Property-based equivalence: on grammar-sampled random workloads, all
//! optimal labelers must agree — the central correctness claim behind the
//! paper's "same code, faster selection".

use std::sync::Arc;

use proptest::prelude::*;

use odburg::prelude::*;
use odburg::workloads::random_workload;

/// Total optimal cost of a forest according to a labeler + reducer.
fn reduced_cost(forest: &Forest, normal: &Arc<NormalGrammar>, chooser: &dyn RuleChooser) -> Cost {
    odburg::codegen::reduce_forest(forest, normal, chooser)
        .expect("reduce")
        .total_cost
}

fn check_equivalence(target: &str, seed: u64, trees: usize) -> Result<(), TestCaseError> {
    let grammar = odburg::targets::by_name(target).unwrap();
    let normal = Arc::new(grammar.normalize());
    let workload = random_workload(&normal, seed, trees);
    let forest = &workload.forest;

    let mut dp = DpLabeler::new(normal.clone());
    let dp_labeling = dp.label_forest(forest).expect("dp labels sampled trees");
    let dp_cost = reduced_cost(forest, &normal, &dp_labeling);

    let mut od = OnDemandAutomaton::new(normal.clone());
    let od_labeling = od.label_forest(forest).expect("od labels sampled trees");
    let od_chooser = od_labeling.chooser(&od);
    let od_cost = reduced_cost(forest, &normal, &od_chooser);

    let mut odp = OnDemandAutomaton::with_config(
        normal.clone(),
        OnDemandConfig {
            project_children: true,
            ..OnDemandConfig::default()
        },
    );
    let odp_labeling = odp.label_forest(forest).expect("projected od labels");
    let odp_chooser = odp_labeling.chooser(&odp);
    let odp_cost = reduced_cost(forest, &normal, &odp_chooser);

    prop_assert_eq!(
        dp_cost,
        od_cost,
        "dp vs ondemand on {} seed {}",
        target,
        seed
    );
    prop_assert_eq!(dp_cost, odp_cost, "projection on {} seed {}", target, seed);

    // Per-nonterminal optimality: for every node, the automaton's state
    // must record a rule exactly when DP found a finite cost.
    let start = normal.start();
    for (id, _) in forest.iter() {
        let dp_has = dp_labeling.rule_for(id, start).is_some();
        let od_has = od_chooser.rule_for(id, start).is_some();
        prop_assert_eq!(dp_has, od_has, "start derivability at {}", id);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn x86ish_equivalence(seed in 0u64..10_000) {
        check_equivalence("x86ish", seed, 40)?;
    }

    #[test]
    fn riscish_equivalence(seed in 0u64..10_000) {
        check_equivalence("riscish", seed, 40)?;
    }

    #[test]
    fn sparcish_equivalence(seed in 0u64..10_000) {
        check_equivalence("sparcish", seed, 40)?;
    }

    #[test]
    fn alphaish_equivalence(seed in 0u64..10_000) {
        check_equivalence("alphaish", seed, 40)?;
    }

    #[test]
    fn jvmish_equivalence(seed in 0u64..10_000) {
        check_equivalence("jvmish", seed, 40)?;
    }

    #[test]
    fn offline_matches_dp_on_fixed_grammar(seed in 0u64..10_000) {
        // With no dynamic rules at all, the offline automaton must agree
        // with DP exactly.
        let grammar = odburg::targets::x86ish().without_dynamic_rules().unwrap();
        let normal = Arc::new(grammar.normalize());
        let workload = random_workload(&normal, seed, 30);
        let forest = &workload.forest;

        let mut dp = DpLabeler::new(normal.clone());
        let dp_labeling = dp.label_forest(forest).unwrap();
        let dp_cost = reduced_cost(forest, &normal, &dp_labeling);

        let offline = Arc::new(
            OfflineAutomaton::build(normal.clone(), OfflineConfig::default()).unwrap(),
        );
        let mut off = OfflineLabeler::new(offline.clone());
        let off_labeling = off.label_forest(forest).unwrap();
        let off_chooser = off_labeling.chooser(&*offline);
        let off_cost = reduced_cost(forest, &normal, &off_chooser);

        prop_assert_eq!(dp_cost, off_cost);
    }

    #[test]
    fn sexpr_roundtrip_on_sampled_trees(seed in 0u64..10_000) {
        // Structural property of the IR substrate: printing and reparsing
        // a sampled tree reproduces it.
        let grammar = odburg::targets::riscish();
        let normal = grammar.normalize();
        let workload = random_workload(&normal, seed, 5);
        for &root in workload.forest.roots() {
            let text = to_sexpr(&workload.forest, root);
            let mut fresh = Forest::new();
            let new_root = parse_sexpr(&mut fresh, &text).unwrap();
            prop_assert_eq!(to_sexpr(&fresh, new_root), text);
        }
    }

    #[test]
    fn work_ratio_favors_automaton(seed in 0u64..1_000) {
        // The headline claim, as a property: once warm, the on-demand
        // automaton does less work per node than DP.
        let grammar = odburg::targets::x86ish();
        let normal = Arc::new(grammar.normalize());
        let warmup = random_workload(&normal, seed, 60);
        let measured = random_workload(&normal, seed.wrapping_add(1), 60);

        let mut od = OnDemandAutomaton::new(normal.clone());
        od.label_forest(&warmup.forest).unwrap();
        od.reset_counters();
        od.label_forest(&measured.forest).unwrap();
        let od_work = od.counters().work_units() as f64 / od.counters().nodes as f64;

        let mut dp = DpLabeler::new(normal.clone());
        dp.label_forest(&measured.forest).unwrap();
        let dp_work = dp.counters().work_units() as f64 / dp.counters().nodes as f64;

        prop_assert!(
            od_work < dp_work,
            "warm automaton ({od_work:.1}/node) must beat dp ({dp_work:.1}/node)"
        );
    }
}
