//! Cross-crate integration: the full pipeline (MiniC → IR → label →
//! reduce → emit) for every target grammar and every benchmark program,
//! across all four selector implementations.

use std::sync::Arc;

use odburg::frontend::programs;
use odburg::prelude::*;

/// Runs one labeler over a forest and reduces; returns (cost, instrs).
fn run_reduction(
    forest: &Forest,
    normal: &Arc<NormalGrammar>,
    chooser: &dyn RuleChooser,
) -> (Cost, Vec<String>) {
    let red = odburg::codegen::reduce_forest(forest, normal, chooser)
        .expect("reduction must succeed after labeling");
    (red.total_cost, red.instructions)
}

#[test]
fn every_selector_handles_every_program_on_every_target() {
    for grammar in odburg::targets::all().into_iter().skip(1) {
        let normal = Arc::new(grammar.normalize());
        let stripped = Arc::new(
            grammar
                .without_dynamic_rules()
                .expect("targets keep fixed fallbacks")
                .normalize(),
        );
        let offline = Arc::new(
            OfflineAutomaton::build(stripped.clone(), OfflineConfig::default())
                .unwrap_or_else(|e| panic!("offline build for {}: {e}", grammar.name())),
        );

        let mut dp = DpLabeler::new(normal.clone());
        let mut od = OnDemandAutomaton::new(normal.clone());
        let mut od_proj = OnDemandAutomaton::with_config(
            normal.clone(),
            OnDemandConfig {
                project_children: true,
                ..OnDemandConfig::default()
            },
        );
        let mut off = OfflineLabeler::new(offline.clone());
        let mut mx = MacroExpander::new(normal.clone());
        let mut dp_stripped = DpLabeler::new(stripped.clone());

        for program in programs::all() {
            let forest = program.compile().expect("programs compile");
            let name = format!("{}/{}", grammar.name(), program.name);

            let dp_labeling = dp.label_forest(&forest).expect(&name);
            let (dp_cost, dp_instrs) = run_reduction(&forest, &normal, &dp_labeling);

            let od_labeling = od.label_forest(&forest).expect(&name);
            let od_chooser = od_labeling.chooser(&od);
            let (od_cost, od_instrs) = run_reduction(&forest, &normal, &od_chooser);

            let odp_labeling = od_proj.label_forest(&forest).expect(&name);
            let odp_chooser = odp_labeling.chooser(&od_proj);
            let (odp_cost, _) = run_reduction(&forest, &normal, &odp_chooser);

            // The on-demand automaton computes exactly the DP optimum —
            // same costs AND the same code.
            assert_eq!(dp_cost, od_cost, "{name}: dp vs ondemand cost");
            assert_eq!(dp_instrs, od_instrs, "{name}: dp vs ondemand code");
            assert_eq!(dp_cost, odp_cost, "{name}: projection changes cost");

            // The offline automaton on the stripped grammar equals DP on
            // the stripped grammar, and can only be worse than full DP.
            let off_labeling = off.label_forest(&forest).expect(&name);
            let off_chooser = off_labeling.chooser(&*offline);
            let (off_cost, off_instrs) = run_reduction(&forest, &stripped, &off_chooser);
            let dps_labeling = dp_stripped.label_forest(&forest).expect(&name);
            let (dps_cost, dps_instrs) = run_reduction(&forest, &stripped, &dps_labeling);
            assert_eq!(off_cost, dps_cost, "{name}: offline vs stripped dp");
            assert_eq!(
                off_instrs, dps_instrs,
                "{name}: offline vs stripped dp code"
            );
            assert!(
                off_cost >= dp_cost,
                "{name}: stripping dynamic rules cannot improve cost"
            );

            // Macro expansion is the worst optimal-less baseline.
            let mx_labeling = mx.label_forest(&forest).expect(&name);
            let (mx_cost, mx_instrs) = run_reduction(&forest, &normal, &mx_labeling);
            assert!(
                mx_cost >= dp_cost,
                "{name}: macro expansion cannot beat the optimum"
            );
            assert!(!mx_instrs.is_empty(), "{name}: macro emitted nothing");
        }
    }
}

#[test]
fn emitted_code_renders_without_placeholders() {
    // Every template placeholder must resolve on the real grammars — an
    // unresolved `?…` means a template references an operand the rule
    // cannot see.
    for grammar in odburg::targets::all().into_iter().skip(1) {
        let normal = Arc::new(grammar.normalize());
        let mut dp = DpLabeler::new(normal.clone());
        for program in programs::all() {
            let forest = program.compile().unwrap();
            let labeling = dp.label_forest(&forest).unwrap();
            let red = odburg::codegen::reduce_forest(&forest, &normal, &labeling).unwrap();
            let bad = red.lint_rendering();
            assert!(
                bad.is_empty(),
                "{}/{}: unresolved placeholders in {:?}",
                grammar.name(),
                program.name,
                bad
            );
        }
    }
}

#[test]
fn relabeling_is_stable_and_all_hits() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let forest = programs::combined_forest().unwrap();
    let mut od = OnDemandAutomaton::new(normal.clone());
    let first = od.label_forest(&forest).unwrap();
    od.reset_counters();
    let second = od.label_forest(&forest).unwrap();
    assert_eq!(first, second, "labeling must be deterministic");
    assert_eq!(
        od.counters().memo_misses,
        0,
        "second pass must be pure hits"
    );
}

#[test]
fn rmw_improves_code_on_matcherarch() {
    // The matcherarch benchmark is built to contain RMW opportunities;
    // the dynamic-cost grammar must beat the stripped grammar on it.
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let stripped = Arc::new(grammar.without_dynamic_rules().unwrap().normalize());
    let forest = programs::by_name("matcherarch").unwrap().compile().unwrap();

    let mut dp_full = DpLabeler::new(normal.clone());
    let full_labeling = dp_full.label_forest(&forest).unwrap();
    let (full_cost, full_instrs) = run_reduction(&forest, &normal, &full_labeling);

    let mut dp_stripped = DpLabeler::new(stripped.clone());
    let s_labeling = dp_stripped.label_forest(&forest).unwrap();
    let (s_cost, s_instrs) = run_reduction(&forest, &stripped, &s_labeling);

    assert!(
        full_cost < s_cost,
        "dynamic rules must pay off: {full_cost} vs {s_cost}"
    );
    assert!(
        full_instrs.len() < s_instrs.len(),
        "dynamic rules must shrink code: {} vs {}",
        full_instrs.len(),
        s_instrs.len()
    );
    // And an actual RMW instruction must appear.
    assert!(
        full_instrs.iter().any(|i| i.contains(", (")),
        "expected a memory-destination instruction"
    );
}

#[test]
fn labelers_agree_on_sexpr_corpus() {
    // A hand-picked corpus of shapes that exercise helper nonterminals,
    // folded operands, and payload-dependent rules.
    let corpus = [
        "(StoreI8 (AddrLocalP @x) (ConstI8 7))",
        "(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))",
        "(StoreI8 (AddP (LoadP (AddrFrameP @p)) (MulI8 (LoadI8 (AddrLocalP @i)) (ConstI8 8))) (ConstI8 0))",
        "(BrLtI8 @L0 (LoadI8 (AddrLocalP @i)) (ConstI8 100))",
        "(RetI8 (MulI8 (LoadI8 (AddrLocalP @x)) (ConstI8 16)))",
        "(RetI8 (DivI8 (LoadI8 (AddrLocalP @x)) (LoadI8 (AddrLocalP @y))))",
        "(StoreF8 (AddrLocalP @f) (MulF8 (LoadF8 (AddrLocalP @f)) (ConstF8 #2.0)))",
    ];
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let mut dp = DpLabeler::new(normal.clone());
    let mut od = OnDemandAutomaton::new(normal.clone());
    for src in corpus {
        let mut forest = Forest::new();
        let root = parse_sexpr(&mut forest, src).unwrap();
        forest.add_root(root);
        let dp_l = dp
            .label_forest(&forest)
            .unwrap_or_else(|e| panic!("{src}: {e}"));
        let od_l = od.label_forest(&forest).unwrap();
        let od_c = od_l.chooser(&od);
        let (c1, i1) = run_reduction(&forest, &normal, &dp_l);
        let (c2, i2) = run_reduction(&forest, &normal, &od_c);
        assert_eq!(c1, c2, "{src}");
        assert_eq!(i1, i2, "{src}");
    }
}
