//! The telemetry subsystem's contracts, cross-crate: histogram
//! merge/count preservation and the quantile error bound as properties
//! over random samples, flight-recorder overflow accounting, and the
//! registry conservation law recomputed against a live
//! [`SelectorServer`]'s own report.

mod common;

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use odburg::prelude::*;
use odburg::select::telemetry::{bucket_bounds, bucket_index};
use odburg::service::{JobOptions, SelectorServer, ServerConfig};

/// Draws a sample set that exercises every histogram regime: exact
/// sub-bucket values, mid-range, and the wide octaves.
fn sample_values(rng: &mut StdRng) -> Vec<u64> {
    let len = rng.gen_range(1..200usize);
    (0..len)
        .map(|_| {
            let magnitude = rng.gen_range(0..60u32);
            rng.gen_range(0..2u64 << magnitude)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splitting a sample set across two histograms and merging them
    /// must reproduce the single-histogram recording exactly: same
    /// buckets, count, sum, and max. This is the property that makes
    /// per-worker recording + snapshot-time merging sound.
    #[test]
    fn histogram_merge_preserves_everything(seed in 0u64..(1u64 << 48)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = sample_values(&mut rng);

        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { left.record(v) } else { right.record(v) }
        }
        left.merge(&right);

        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.count(), values.len() as u64);
        prop_assert_eq!(left.sum(), whole.sum());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert_eq!(left.nonzero_buckets(), whole.nonzero_buckets());
    }

    /// Histogram quantiles track the exact order statistic to within
    /// the width of the bucket containing it (≤ 1/64 relative above
    /// the direct-indexed range), and the max is exact.
    #[test]
    fn quantile_error_is_bounded_by_bucket_width(seed in 0u64..(1u64 << 48)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = sample_values(&mut rng);

        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let rank = (q * (sorted.len() - 1) as f64).round() as usize;
            let exact = sorted[rank];
            let estimate = h.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            prop_assert!(
                estimate.abs_diff(exact) <= width,
                "q={} estimate {} vs exact {} (bucket width {})",
                q, estimate, exact, width
            );
        }
        prop_assert_eq!(h.max(), sorted[sorted.len() - 1]);
    }

    /// The atomic histogram's snapshot agrees with a plain histogram
    /// fed the same values — the lock-free path loses nothing.
    #[test]
    fn atomic_histogram_snapshot_is_lossless(seed in 0u64..(1u64 << 48)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = sample_values(&mut rng);

        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for &v in &values {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        prop_assert_eq!(snap.count(), plain.count());
        prop_assert_eq!(snap.sum(), plain.sum());
        prop_assert_eq!(snap.max(), plain.max());
        prop_assert_eq!(snap.nonzero_buckets(), plain.nonzero_buckets());
    }
}

/// Regression: overflowing a bounded ring must drop the *oldest*
/// events, count every drop, and never tear an event — each retained
/// entry is exactly one of the written ones, in timestamp order.
#[test]
fn recorder_overflow_drops_oldest_and_counts() {
    const CAPACITY: usize = 8;
    const WRITES: u64 = 100;

    let recorder = FlightRecorder::new(2, CAPACITY);
    for i in 0..WRITES {
        recorder.record(
            0,
            Event {
                ts_ns: i,
                kind: EventKind::Admit,
                target: (i % 3) as u32,
                ticket: i,
                arg: i * 7,
            },
        );
    }

    assert_eq!(recorder.dropped(), WRITES - CAPACITY as u64);
    let events: Vec<Event> = recorder.events().into_iter().map(|(_, e)| e).collect();
    assert_eq!(events.len(), CAPACITY);
    for (offset, event) in events.iter().enumerate() {
        // The survivors are the newest CAPACITY writes, un-torn: every
        // field still satisfies the relations the writer established.
        let i = WRITES - CAPACITY as u64 + offset as u64;
        assert_eq!(event.ts_ns, i);
        assert_eq!(event.ticket, i);
        assert_eq!(event.arg, i * 7);
        assert_eq!(event.target, (i % 3) as u32);
    }
}

/// Concurrent writers on distinct lanes never interfere: each lane
/// retains its own newest events and the drop counter accounts for
/// every overflow across lanes.
#[test]
fn recorder_lanes_are_independent_under_concurrency() {
    const LANES: usize = 4;
    const CAPACITY: usize = 16;
    const WRITES_PER_LANE: u64 = 64;

    let recorder = Arc::new(FlightRecorder::new(LANES, CAPACITY));
    std::thread::scope(|scope| {
        for lane in 0..LANES {
            let recorder = Arc::clone(&recorder);
            scope.spawn(move || {
                for i in 0..WRITES_PER_LANE {
                    recorder.record(
                        lane,
                        Event {
                            ts_ns: i,
                            kind: EventKind::Pop,
                            target: lane as u32,
                            ticket: i,
                            arg: lane as u64 * 1_000 + i,
                        },
                    );
                }
            });
        }
    });

    assert_eq!(
        recorder.dropped(),
        LANES as u64 * (WRITES_PER_LANE - CAPACITY as u64)
    );
    let events = recorder.events();
    assert_eq!(events.len(), LANES * CAPACITY);
    for (lane, event) in events {
        assert_eq!(event.target, lane as u32);
        assert_eq!(event.arg, lane as u64 * 1_000 + event.ticket);
        assert!(event.ticket >= WRITES_PER_LANE - CAPACITY as u64);
    }
}

/// The conservation law recomputed purely from the metrics registry of
/// a live server: submitted == accepted + rejected + shed, and the
/// registry's totals agree with the server's own shutdown report. The
/// flight recorder must also have seen the core's `EpochPublish`
/// events, proving the shared-core hook is attached.
#[test]
fn live_server_registry_conserves_and_records_epochs() {
    const JOBS: usize = 40;

    let grammar = Arc::new(common::random_grammar(0xBEEF).normalize());
    let server = SelectorServer::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    server
        .register_normal("telemetry-target", Arc::clone(&grammar))
        .expect("fresh registry");

    let mut sampler = odburg::workloads::TreeSampler::new(&grammar, 0xF00D);
    let mut handles = Vec::new();
    for _ in 0..JOBS {
        let mut forest = Forest::new();
        let root = sampler.sample_tree(&mut forest);
        forest.add_root(root);
        handles.push(
            server
                .try_submit_with("telemetry-target", forest, JobOptions::default())
                .expect("uncapped queue accepts"),
        );
    }
    for handle in handles {
        let done = handle.wait();
        assert!(done.outcome.is_ok(), "sampled trees label");
    }

    let telemetry = Arc::clone(server.telemetry());
    let report = server.shutdown();

    let totals = telemetry.totals();
    assert!(totals.conserved(), "registry conservation: {totals:?}");
    assert_eq!(totals.submitted, JOBS as u64);
    assert_eq!(totals.accepted, JOBS as u64);
    assert_eq!(totals.completed, JOBS as u64);
    assert_eq!(
        (
            totals.submitted,
            totals.accepted,
            totals.rejected,
            totals.shed
        ),
        (
            report.submitted,
            report.accepted,
            report.rejected,
            report.shed
        ),
        "registry and server report disagree"
    );

    let metrics = telemetry.target("telemetry-target");
    assert_eq!(metrics.queue_wait.count(), JOBS as u64);
    assert_eq!(metrics.labeling.count(), JOBS as u64);
    assert!(metrics.labeling.snapshot().sum() > 0);

    let events = telemetry.recorder().events();
    let publishes = events
        .iter()
        .filter(|(_, e)| e.kind == EventKind::EpochPublish)
        .count();
    assert!(
        publishes > 0,
        "the shared core must report its snapshot publishes through the recorder"
    );
    let admits = events
        .iter()
        .filter(|(_, e)| e.kind == EventKind::Admit)
        .count();
    assert_eq!(admits, JOBS, "every accepted job leaves an Admit event");
    for (_, e) in &events {
        if e.kind == EventKind::Admit || e.kind == EventKind::Complete {
            assert_ne!(
                e.ticket,
                Event::NO_TICKET,
                "{:?} must carry a ticket",
                e.kind
            );
        }
    }

    // And the exporters stay well-formed on a real run's registry.
    let mut jsonl = Vec::new();
    write_jsonl(&mut jsonl, &telemetry).expect("jsonl export");
    let jsonl = String::from_utf8(jsonl).expect("utf8");
    assert!(jsonl.lines().count() > 1 + JOBS);
    let mut trace = Vec::new();
    write_chrome_trace(&mut trace, &telemetry).expect("trace export");
    let trace = String::from_utf8(trace).expect("utf8");
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));

    // No quiet data loss in this small run.
    assert_eq!(telemetry.recorder().dropped(), 0);
}
