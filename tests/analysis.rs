//! Property-based testing of the grammar verifier: defects injected into
//! random grammars must be detected, completeness witnesses must be
//! *executable* (the DP oracle reproduces the failure), and grammars the
//! verifier calls complete must never fail selection on their own
//! workloads.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use odburg::grammar::analysis::{self, Code, Witness};
use odburg::prelude::*;
use odburg::workloads::TreeSampler;

use common::random_grammar;

/// Renders a grammar back to DSL text so defects can be injected as
/// appended lines (round-tripping is covered by `random_grammars.rs`).
fn dsl_of(grammar: &Grammar) -> String {
    grammar.to_string()
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

/// Asserts that a G0003 witness really is executable: labeling the
/// witness forest with the DP oracle fails with `NoCover`.
fn assert_witness_reproduces_nocover(normal: &Arc<NormalGrammar>, diag: &Diagnostic) {
    let Some(Witness::NoCover { forest, root }) = &diag.witness else {
        panic!("G0003 diagnostic without a NoCover witness: {diag}");
    };
    assert_eq!(forest.roots(), &[*root], "witness forest has one root");
    let mut dp = DpLabeler::new(Arc::clone(normal));
    match dp.label_forest(forest) {
        Err(LabelError::NoCover { .. }) => {}
        other => panic!("witness for `{diag}` did not reproduce NoCover: {other:?}"),
    }
}

#[test]
fn cross_product_hole_yields_an_executable_witness() {
    // Store covers (a, b) and (b, a) but not (a, a): the canonical
    // cross-product incompleteness. The witness must fail the DP oracle.
    let grammar = parse_grammar(
        "%start stmt\na: ConstI8 (1)\nb: ConstI4 (1)\n\
         stmt: StoreI8(a, b) (1)\nstmt: StoreI8(b, a) (1)\n",
    )
    .unwrap();
    let normal = Arc::new(grammar.normalize());
    let diags = analysis::analyze(&normal);
    let g0003: Vec<_> = diags
        .iter()
        .filter(|d| d.code == Code::IncompleteOperator)
        .collect();
    assert_eq!(g0003.len(), 1, "{diags:?}");
    assert_eq!(g0003[0].severity, Severity::Error);
    assert_witness_reproduces_nocover(&normal, g0003[0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn injected_defects_are_detected(seed in 0u64..100_000) {
        // Append one defect of each class to a random well-formed
        // grammar; the verifier must flag every one of them, whatever
        // else it finds in the random part.
        let base = dsl_of(&random_grammar(seed));
        let defective = format!(
            "{base}\n\
             # injected: shadowed rule (G0004)\n\
             zz_sh: ConstI8 (1)\n\
             zz_sh: ConstI8 (3)\n\
             # injected: underivable nonterminal (G0001)\n\
             zz_und: LoadI8(zz_und) (1)\n\
             # injected: zero-cost chain cycle (G0005) + unreachable (G0002)\n\
             zz_cyc_a: ConstI8 (1)\n\
             zz_cyc_a: zz_cyc_b (0)\n\
             zz_cyc_b: zz_cyc_a (0)\n\
             # injected: cross-product completeness hole (G0003)\n\
             zz_ga: ConstI4 (1)\n\
             zz_gb: ConstI2 (1)\n\
             zz_gs: StoreI4(zz_ga, zz_gb) (1)\n\
             zz_gs: StoreI4(zz_gb, zz_ga) (1)\n"
        );
        let grammar = parse_grammar(&defective)
            .unwrap_or_else(|e| panic!("defective grammar must still parse: {e}\n{defective}"));
        let normal = Arc::new(grammar.normalize());
        let diags = analysis::analyze(&normal);

        let has = |code: Code, subject: &str| {
            diags.iter().any(|d| d.code == code && d.message.contains(subject))
        };
        prop_assert!(has(Code::DominatedRule, "zz_sh"), "{:?}", codes(&diags));
        prop_assert!(has(Code::UnderivableNonterminal, "zz_und"), "{:?}", codes(&diags));
        prop_assert!(has(Code::ZeroCostChainCycle, "zz_cyc_a"), "{:?}", codes(&diags));
        prop_assert!(has(Code::UnreachableNonterminal, "zz_cyc_b"), "{:?}", codes(&diags));
        prop_assert!(has(Code::IncompleteOperator, "StoreI4"), "{:?}", codes(&diags));

        // The injected hole's witness is executable regardless of what
        // the random part contains: StoreI4's operands derive only the
        // injected nonterminals, so the DP oracle must fail on it.
        let hole = diags
            .iter()
            .find(|d| d.code == Code::IncompleteOperator && d.message.contains("StoreI4"))
            .unwrap();
        assert_witness_reproduces_nocover(&normal, hole);
    }

    #[test]
    fn g0003_witnesses_reproduce_nocover(seed in 0u64..100_000) {
        // Whatever completeness holes the verifier finds in a raw random
        // grammar, every witness it attaches must reproduce the failure.
        let grammar = random_grammar(seed);
        let normal = Arc::new(grammar.normalize());
        let diags = analysis::analyze(&normal);
        for d in diags.iter().filter(|d| d.code == Code::IncompleteOperator) {
            if d.severity == Severity::Error {
                // Error severity means no dynamic rule could save the
                // tree: the oracle must agree unconditionally.
                assert_witness_reproduces_nocover(&normal, d);
            }
        }
    }

    #[test]
    fn verifier_complete_grammars_never_nocover(seed in 0u64..100_000) {
        // Soundness direction: when the verifier reports no completeness
        // hole (and its exploration neither diverged nor truncated), the
        // grammar's own workloads must never fail selection.
        let grammar = random_grammar(seed);
        let normal = Arc::new(grammar.normalize());
        let full = analysis::analyze_full(&normal);
        let suspect = full.diagnostics.iter().any(|d| {
            matches!(
                d.code,
                Code::IncompleteOperator | Code::CostDivergence | Code::AnalysisTruncated
            )
        });
        if suspect {
            // Nothing to check: the verifier itself says selection may
            // fail (or it could not finish exploring).
            return Ok(());
        }
        let mut sampler = TreeSampler::new(&normal, seed ^ 0xC0FFEE);
        let forest = sampler.sample_forest(40);
        let mut dp = DpLabeler::new(Arc::clone(&normal));
        match dp.label_forest(&forest) {
            Ok(_) => {}
            Err(LabelError::NoCover { op, .. }) => {
                prop_assert!(false, "verifier-clean grammar seed {seed} NoCovered at {op}");
            }
            Err(other) => prop_assert!(false, "unexpected label error: {other}"),
        }
    }

    #[test]
    fn diagnostics_are_deterministic(seed in 0u64..100_000) {
        // Two runs over the same grammar agree exactly — codes, order,
        // messages, payloads (the CLI and CI depend on stable output).
        let normal = random_grammar(seed).normalize();
        let a = analysis::analyze(&normal);
        let b = analysis::analyze(&normal);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
