//! Failure injection across the crates: malformed inputs, uncovered
//! trees, and automaton limits must produce the documented errors, never
//! panics or wrong derivations.

use std::sync::Arc;

use odburg::grammar::GrammarError;
use odburg::prelude::*;

#[test]
fn dsl_rejects_malformed_grammars_with_line_numbers() {
    let cases = [
        ("reg: (1)\n", 1),
        ("reg: ConstI8 (1)\nreg: AddI8(reg) (1)\n", 2),
        ("reg: ConstI8\n", 1),
        ("%start\nreg: ConstI8 (1)\n", 1),
        ("reg: UnknownOp (1)\n", 1),
    ];
    for (src, line) in cases {
        match parse_grammar(src) {
            Err(GrammarError::Parse { line: l, .. }) => {
                assert_eq!(l, line, "wrong line for {src:?}")
            }
            other => panic!("{src:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn uncovered_operator_fails_identically_everywhere() {
    // jvmish has no float rules at all.
    let grammar = odburg::targets::jvmish();
    let normal = Arc::new(grammar.normalize());
    let mut forest = Forest::new();
    let root = parse_sexpr(&mut forest, "(StoreF8 (AddrLocalP @x) (ConstF8 #1.0))").unwrap();
    forest.add_root(root);

    let mut dp = DpLabeler::new(normal.clone());
    assert!(matches!(
        dp.label_forest(&forest),
        Err(LabelError::NoCover { .. })
    ));
    let mut od = OnDemandAutomaton::new(normal.clone());
    assert!(matches!(
        od.label_forest(&forest),
        Err(LabelError::NoCover { .. })
    ));
    let offline = Arc::new(
        OfflineAutomaton::build(
            Arc::new(grammar.without_dynamic_rules().unwrap().normalize()),
            OfflineConfig::default(),
        )
        .unwrap(),
    );
    let mut off = OfflineLabeler::new(offline);
    assert!(matches!(
        off.label_forest(&forest),
        Err(LabelError::NoCover { .. })
    ));
}

#[test]
fn partial_cover_fails_at_the_root_not_before() {
    // A node covered only for a non-start nonterminal labels fine but
    // fails at reduction when the goal is unreachable.
    let grammar = parse_grammar(
        "%start stmt\nstmt: StoreI8(addr, reg) (1)\naddr: reg (0)\nreg: ConstI8 (1)\n",
    )
    .unwrap();
    let normal = Arc::new(grammar.normalize());
    let mut forest = Forest::new();
    // A bare constant is labelable (derives reg) but is not a stmt…
    let root = parse_sexpr(&mut forest, "(ConstI8 1)").unwrap();
    forest.add_root(root);
    let mut od = OnDemandAutomaton::new(normal.clone());
    let labeling = od.label_forest(&forest).unwrap();
    let chooser = labeling.chooser(&od);
    let err = odburg::codegen::reduce_forest(&forest, &normal, &chooser).unwrap_err();
    assert!(matches!(
        err,
        odburg::codegen::ReduceError::MissingRule { .. }
    ));
}

#[test]
fn state_budgets_fire_on_both_automata() {
    let grammar = odburg::targets::riscish();
    let normal = Arc::new(grammar.normalize());
    let mut od = OnDemandAutomaton::with_config(
        normal.clone(),
        OnDemandConfig {
            state_budget: 3,
            ..OnDemandConfig::default()
        },
    );
    let forest = odburg::frontend::programs::by_name("fact")
        .unwrap()
        .compile()
        .unwrap();
    assert!(matches!(
        od.label_forest(&forest),
        Err(LabelError::StateBudgetExceeded { budget: 3 })
    ));

    let fixed = Arc::new(grammar.without_dynamic_rules().unwrap().normalize());
    assert!(matches!(
        OfflineAutomaton::build(
            fixed,
            OfflineConfig {
                state_budget: 3,
                ..OfflineConfig::default()
            }
        ),
        Err(LabelError::StateBudgetExceeded { budget: 3 })
    ));
}

#[test]
fn flush_policy_bounds_memory_and_stays_correct() {
    // With a tiny budget and the Flush policy, labeling still succeeds
    // (per forest), memory stays bounded, and the derivations remain
    // optimal — each forest just re-warms the automaton.
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let budget = 34; // > largest single-program automaton (32), < suite total (~58)
    let mut od = OnDemandAutomaton::with_config(
        normal.clone(),
        OnDemandConfig {
            state_budget: budget,
            budget_policy: BudgetPolicy::Flush,
            ..OnDemandConfig::default()
        },
    );
    let mut dp = DpLabeler::new(normal.clone());
    for program in odburg::frontend::programs::all() {
        let forest = program.compile().unwrap();
        let labeling = od.label_forest(&forest).unwrap();
        let chooser = labeling.chooser(&od);
        let od_cost = odburg::codegen::reduce_forest(&forest, &normal, &chooser)
            .unwrap()
            .total_cost;
        let dp_labeling = dp.label_forest(&forest).unwrap();
        let dp_cost = odburg::codegen::reduce_forest(&forest, &normal, &dp_labeling)
            .unwrap()
            .total_cost;
        assert_eq!(od_cost, dp_cost, "{}: flush broke optimality", program.name);
        assert!(od.stats().states <= budget + 1, "budget not respected");
    }
    assert!(od.stats().flushes > 0, "the tiny budget must force flushes");
}

#[test]
fn clear_resets_to_cold() {
    let grammar = odburg::targets::jvmish();
    let normal = Arc::new(grammar.normalize());
    let mut od = OnDemandAutomaton::new(normal);
    let forest = odburg::frontend::programs::by_name("fact")
        .unwrap()
        .compile()
        .unwrap();
    od.label_forest(&forest).unwrap();
    assert!(od.stats().states > 0);
    od.clear();
    assert_eq!(od.stats().states, 0);
    assert_eq!(od.stats().transitions, 0);
    assert_eq!(od.stats().flushes, 1);
    // And it still works afterwards.
    od.label_forest(&forest).unwrap();
    assert!(od.stats().states > 0);
}

#[test]
fn offline_refuses_dynamic_costs_by_default() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    assert!(matches!(
        OfflineAutomaton::build(normal, OfflineConfig::default()),
        Err(LabelError::DynamicCostsUnsupported)
    ));
}

#[test]
fn strip_mode_loses_exactly_the_dynamic_rules() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let auto = OfflineAutomaton::build(
        normal,
        OfflineConfig {
            dyncost_mode: DynCostMode::Strip,
            ..OfflineConfig::default()
        },
    )
    .unwrap();
    // Strip mode and the explicitly stripped grammar produce automata of
    // the same size.
    let stripped = Arc::new(
        odburg::targets::x86ish()
            .without_dynamic_rules()
            .unwrap()
            .normalize(),
    );
    let auto2 = OfflineAutomaton::build(stripped, OfflineConfig::default()).unwrap();
    assert_eq!(auto.stats().states, auto2.stats().states);
}

#[test]
fn frontend_errors_surface_cleanly() {
    assert!(odburg::frontend::compile("fn f( { }").is_err());
    assert!(odburg::frontend::compile("fn f() { return zz; }").is_err());
    assert!(odburg::frontend::compile("fn f() { let x = 1 ? 2; }").is_err());
}

#[test]
fn error_types_are_displayable_and_std_errors() {
    fn assert_error<E: std::error::Error>(_: &E) {}
    let e = LabelError::NoCover {
        node: NodeId(3),
        op: Op::new(OpKind::Add, TypeTag::I4),
    };
    assert_error(&e);
    assert!(e.to_string().contains("AddI4"));
    let g = GrammarError::Parse {
        line: 7,
        message: "boom".into(),
    };
    assert_error(&g);
    assert!(g.to_string().contains('7'));
}
