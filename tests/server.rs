//! The new failure surface of the long-running [`SelectorServer`]:
//! queue-full backpressure, deadline expiry racing completion, and
//! graceful shutdown with pinned labelings straddling a compaction —
//! every successful labeling cross-checked **bit-identically** (full
//! instruction sequence + total cost) against a fresh [`DpLabeler`]
//! oracle, exactly as `tests/service_fuzz.rs` does for the batch path.
//!
//! The conservation law under test everywhere: every submitted job is
//! either completed, typed-rejected (`QueueFull`), or deadline-expired
//! — never silently lost, including across `shutdown()`.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use odburg::prelude::*;
use odburg::service::{
    FairConfig, JobError, JobHandle, JobOptions, SchedPolicy, SelectorServer, ServerConfig,
    SubmitError,
};
use odburg::workloads::TreeSampler;

use common::random_grammar;

/// The oracle: a fresh iburg-style dynamic-programming labeler, built
/// from scratch for one forest, reduced to instructions.
fn dp_reduction(forest: &Forest, normal: &Arc<NormalGrammar>) -> Reduction {
    let mut dp = DpLabeler::new(Arc::clone(normal));
    let labeling = dp.label_forest(forest).expect("dp labels sampled trees");
    odburg::codegen::reduce_forest(forest, normal, &labeling).expect("dp reduces")
}

/// A grammar whose dynamic cost depends on the constant's value, so
/// distinct constants keep minting signatures — the compaction churn
/// driver.
fn churn_grammar() -> Arc<NormalGrammar> {
    let mut g = odburg::grammar::parse_grammar(
        r#"
        %grammar churn
        %start stmt
        %dyncost val
        reg: ConstI8 [val]
        reg: AddI8(reg, reg) (1)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .unwrap();
    g.bind_dyncost(
        "val",
        Arc::new(|forest: &Forest, node: odburg::ir::NodeId| {
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            RuleCost::Finite((v.unsigned_abs() % 911) as u16)
        }),
    )
    .unwrap();
    Arc::new(g.normalize())
}

fn churn_forest(k: i64) -> Forest {
    let mut f = Forest::new();
    let root = odburg::ir::parse_sexpr(
        &mut f,
        &format!(
            "(StoreI8 (ConstI8 {k}) (AddI8 (ConstI8 {}) (ConstI8 1)))",
            k + 13
        ),
    )
    .unwrap();
    f.add_root(root);
    f
}

/// Multi-threaded backpressure stress: four submitters flood a tiny
/// queue served by one worker. Every `try_submit` outcome is either an
/// accepted handle (which must resolve with a correct labeling) or a
/// typed `QueueFull` — and the final report's conservation must account
/// for every single attempt.
#[test]
fn queue_full_backpressure_never_loses_a_job() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 200;

    let normal = churn_grammar();
    let server = Arc::new(SelectorServer::new(ServerConfig {
        workers: 1,
        queue_cap: 4,
        ..ServerConfig::default()
    }));
    server
        .register_normal("churn", Arc::clone(&normal))
        .unwrap();

    let accepted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let server = Arc::clone(&server);
            let normal = Arc::clone(&normal);
            let accepted = &accepted;
            let rejected = &rejected;
            let completed = &completed;
            scope.spawn(move || {
                let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
                for i in 0..PER_THREAD {
                    let k = (t * PER_THREAD + i) as i64;
                    let forest = churn_forest(k);
                    match server.try_submit("churn", forest.clone()) {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            handles.push((handle, forest));
                        }
                        Err(SubmitError::QueueFull { capacity }) => {
                            assert_eq!(capacity, 4);
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                // Every accepted job resolves, and resolves *correctly*.
                for (handle, forest) in handles {
                    let done = handle.wait();
                    let got = done.reduce().expect("accepted jobs label");
                    let want = dp_reduction(&forest, &normal);
                    assert_eq!(got.instructions, want.instructions);
                    assert_eq!(got.total_cost, want.total_cost);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let accepted = accepted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let completed = completed.load(Ordering::Relaxed);
    assert_eq!(
        accepted + rejected,
        (SUBMITTERS * PER_THREAD) as u64,
        "every try_submit outcome is typed"
    );
    assert_eq!(completed, accepted, "no accepted job may be lost");
    assert!(
        rejected > 0,
        "a 4-slot queue under 4 flooding submitters must exert backpressure"
    );

    let report = server.shutdown();
    assert_eq!(report.accepted, accepted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed + report.deadline_missed, report.accepted);
    assert_eq!(report.deadline_missed, 0, "no deadlines were set");
    let churn = &report.per_target[0];
    assert_eq!(churn.counters.rejected_submits, rejected);
    assert!(
        churn.counters.maintenance_runs > 0,
        "quanta ran between jobs"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deadline expiry racing completion: jobs with tiny random
    /// deadlines race the worker. Whatever the interleaving, each
    /// outcome is either a bit-identical-to-DP labeling or a typed
    /// `DeadlineExceeded` — and the tallies conserve all of them.
    #[test]
    fn deadline_expiry_races_completion_without_losing_jobs(seed in 0u64..1_000_000) {
        // Derive the racing deadline from the seed: 0..400us spans
        // "always expired" through "usually labeled".
        let deadline_us = seed % 400;
        let normal = Arc::new(random_grammar(seed).normalize());
        let server = SelectorServer::new(ServerConfig {
            workers: 1,
            queue_cap: 64,
            ..ServerConfig::default()
        });
        server.register_normal("race", Arc::clone(&normal)).unwrap();

        let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
        for salt in 0..6u64 {
            let mut sampler = TreeSampler::new(&normal, seed ^ (salt << 8));
            let forest = sampler.sample_forest(4);
            let handle = server
                .try_submit_with(
                    "race",
                    forest.clone(),
                    JobOptions {
                        deadline: Some(Duration::from_micros(deadline_us)),
                        ..JobOptions::default()
                    },
                )
                .expect("a 64-slot queue accepts 6 jobs");
            handles.push((handle, forest));
        }

        let mut labeled = 0u64;
        let mut expired = 0u64;
        for (handle, forest) in handles {
            let done = handle.wait();
            match &done.outcome {
                Ok(_) => {
                    labeled += 1;
                    let got = done.reduce().expect("labeled jobs reduce");
                    let want = dp_reduction(&forest, &normal);
                    prop_assert_eq!(
                        &got.instructions, &want.instructions,
                        "seed {}: racing deadline corrupted a labeling", seed
                    );
                    prop_assert_eq!(got.total_cost, want.total_cost);
                }
                Err(JobError::DeadlineExceeded { .. }) => {
                    expired += 1;
                    prop_assert!(done.latency.is_zero(), "expired jobs are never labeled");
                }
                Err(e @ (JobError::Label(_) | JobError::Panicked { .. })) => {
                    return Err(TestCaseError::fail(format!("sampled trees must label: {e}")));
                }
            }
        }
        let report = server.shutdown();
        prop_assert_eq!(report.accepted, 6);
        prop_assert_eq!(report.completed, labeled);
        prop_assert_eq!(report.deadline_missed, expired);
        prop_assert_eq!(labeled + expired, 6, "conservation across the race");
        let race = &report.per_target[0];
        prop_assert_eq!(race.counters.deadline_misses, expired);
    }
}

/// Graceful shutdown with pinned labelings straddling compactions: a
/// compacting budget churns the target's tables while completed jobs
/// are *held* across epochs and across `shutdown()` itself. Every held
/// pin must keep reducing bit-identically to the oracle no matter how
/// many compactions replaced the tables underneath it.
#[test]
fn shutdown_with_pins_straddling_compaction_is_bit_identical() {
    let normal = churn_grammar();
    let server = SelectorServer::new(ServerConfig {
        workers: 2,
        queue_cap: 512,
        memory_budget: Some(MemoryBudget::compact(10 * 1024, 0.5)),
        ..ServerConfig::default()
    });
    server
        .register_normal("churn", Arc::clone(&normal))
        .unwrap();

    // Enough distinct constants to trip the 10 KiB budget repeatedly.
    let mut held: Vec<(odburg::service::CompletedJob, Reduction)> = Vec::new();
    let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
    for k in 0..160 {
        let forest = churn_forest(k * 7);
        let handle = server
            .try_submit("churn", forest.clone())
            .expect("roomy queue");
        handles.push((handle, forest));
    }
    for (handle, forest) in handles {
        let done = handle.wait();
        let want = dp_reduction(&forest, &normal);
        let got = done.reduce().expect("churn jobs label");
        assert_eq!(got.instructions, want.instructions);
        assert_eq!(got.total_cost, want.total_cost);
        if held.len() < 12 {
            // Keep early pins alive across all later compactions.
            held.push((done, want));
        }
    }

    // The budget must actually have tripped (otherwise this test pins
    // nothing across anything).
    let master = server.shared("churn").unwrap();
    let counters = master.counters();
    assert!(counters.compactions > 0, "churn must compact: {counters}");
    assert!(counters.maintenance_runs > 0);
    assert!(
        master.accounted_bytes().total() <= 10 * 1024,
        "maintenance quanta keep the budget"
    );

    // Shutdown while the pins are still alive…
    let report = server.shutdown();
    assert_eq!(report.completed, 160);
    assert_eq!(report.completed + report.deadline_missed, report.accepted);
    assert!(report.per_target[0].pressure.is_some(), "pressure recorded");

    // …and the pinned labelings still reduce identically afterwards:
    // their snapshots outlive the server, the compactions, everything.
    for (done, want) in &held {
        let again = done.reduce().expect("pins survive shutdown");
        assert_eq!(&again.instructions, &want.instructions);
        assert_eq!(again.total_cost, want.total_cost);
    }
}

/// Governed persistence at the API level: `shutdown()` re-exports each
/// built master's tables into the tables directory, and a fresh server
/// warm-starts from them, answering the seen traffic with zero misses.
#[test]
fn shutdown_reexports_tables_and_heat_survives_restart() {
    let dir = std::env::temp_dir().join("odburg-server-reexport");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let traffic: Vec<Forest> = (0..8).map(|k| churn_forest(k * 3)).collect();

    // First life: cold, learns the traffic, exports at shutdown.
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        tables_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    server.register_normal("churn", churn_grammar()).unwrap();
    let handles: Vec<JobHandle> = traffic
        .iter()
        .map(|f| server.try_submit("churn", f.clone()).unwrap())
        .collect();
    for h in handles {
        assert!(h.wait().outcome.is_ok());
    }
    let report = server.shutdown();
    assert_eq!(report.exported_tables, vec!["churn".to_owned()]);
    assert!(
        report.export_errors.is_empty(),
        "{:?}",
        report.export_errors
    );
    assert!(dir.join("churn.odbt").exists());

    // Second life: warm-starts from the export; the same traffic never
    // enters the grow path.
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        tables_dir: Some(dir),
        ..ServerConfig::default()
    });
    server.register_normal("churn", churn_grammar()).unwrap();
    let handles: Vec<JobHandle> = traffic
        .iter()
        .map(|f| server.try_submit("churn", f.clone()).unwrap())
        .collect();
    for h in handles {
        assert!(h.wait().outcome.is_ok());
    }
    let report = server.shutdown();
    let churn = &report.per_target[0];
    assert!(churn.warm_started, "second life must be warm");
    assert_eq!(churn.counters.memo_misses, 0, "{}", churn.counters);
    assert_eq!(churn.counters.states_built, 0);
}

// ---------------------------------------------------------------------
// Scheduler coverage: EDF ordering, admission purging, fair queueing.
// The deterministic wedge: a grammar whose dynamic cost blocks on a
// gate, so one plug job pins the single worker while the test arranges
// the queue — pop order is then exactly the scheduler's order.
// ---------------------------------------------------------------------

/// A reusable two-phase gate: the worker announces it has *entered* the
/// dyncost closure (the wedge is in place), the test *opens* it.
#[derive(Default)]
struct Gate {
    /// (open, entered)
    state: Mutex<(bool, bool)>,
    cond: Condvar,
}

impl Gate {
    fn enter_and_wait(&self) {
        let mut st = self.state.lock().unwrap();
        st.1 = true;
        self.cond.notify_all();
        while !st.0 {
            st = self.cond.wait(st).unwrap();
        }
    }

    fn open(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 = true;
        self.cond.notify_all();
    }

    fn wait_entered(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.1 {
            st = self.cond.wait(st).unwrap();
        }
    }
}

/// A grammar whose dyncost wedges on `gate` — labeling its plug forest
/// parks the worker until the test opens the gate.
fn gated_grammar(gate: Arc<Gate>) -> Arc<NormalGrammar> {
    let mut g = odburg::grammar::parse_grammar(
        r#"
        %grammar wedge
        %start stmt
        %dyncost gate
        reg: ConstI8 [gate]
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .unwrap();
    g.bind_dyncost(
        "gate",
        Arc::new(move |_: &Forest, _: odburg::ir::NodeId| {
            gate.enter_and_wait();
            RuleCost::Finite(1)
        }),
    )
    .unwrap();
    Arc::new(g.normalize())
}

/// A grammar whose dyncost appends `(tag, value)` to a shared log.
/// Distinct constants mint distinct signatures, so every job's labeling
/// evaluates the closure for its own constant — with a single worker,
/// the deduplicated log is the scheduler's pop order.
fn recording_grammar(
    name: &str,
    tag: &'static str,
    log: Arc<Mutex<Vec<(&'static str, i64)>>>,
) -> Arc<NormalGrammar> {
    let mut g = odburg::grammar::parse_grammar(&format!(
        "%grammar {name}\n%start stmt\n%dyncost rec\n\
         reg: ConstI8 [rec]\nstmt: StoreI8(reg, reg) (1)\n"
    ))
    .unwrap();
    g.bind_dyncost(
        "rec",
        Arc::new(move |forest: &Forest, node: odburg::ir::NodeId| {
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            log.lock().unwrap().push((tag, v));
            RuleCost::Finite(1)
        }),
    )
    .unwrap();
    Arc::new(g.normalize())
}

fn plug_forest() -> Forest {
    let mut f = Forest::new();
    let root = odburg::ir::parse_sexpr(&mut f, "(StoreI8 (ConstI8 0) (ConstI8 1))").unwrap();
    f.add_root(root);
    f
}

/// `(StoreI8 (ConstI8 k) (ConstI8 k))` — one distinct constant per job.
fn tagged_forest(k: i64) -> Forest {
    let mut f = Forest::new();
    let root =
        odburg::ir::parse_sexpr(&mut f, &format!("(StoreI8 (ConstI8 {k}) (ConstI8 {k}))")).unwrap();
    f.add_root(root);
    f
}

/// First occurrence of each logged value, in log order.
fn dedup_log(log: &[(&'static str, i64)]) -> Vec<(&'static str, i64)> {
    let mut seen = std::collections::HashSet::new();
    log.iter().filter(|e| seen.insert(**e)).copied().collect()
}

/// Regression (the queue-slots bug): a bounded queue full of
/// already-expired jobs must not reject fresh feasible submits. The
/// capacity check first purges dead work — completing it as
/// `DeadlineExceeded` — so the new job is accepted; before the fix this
/// was a spurious `QueueFull`.
#[test]
fn expired_queued_jobs_do_not_hold_queue_slots() {
    let gate = Arc::new(Gate::default());
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        queue_cap: 4,
        ..ServerConfig::default()
    });
    server
        .register_normal("wedge", gated_grammar(Arc::clone(&gate)))
        .unwrap();
    server.register_normal("churn", churn_grammar()).unwrap();

    // Wedge the single worker, then fill every bounded slot with jobs
    // that are already dead on arrival.
    let plug = server.try_submit("wedge", plug_forest()).unwrap();
    gate.wait_entered();
    let dead: Vec<JobHandle> = (0..4)
        .map(|k| {
            server
                .try_submit_with(
                    "churn",
                    churn_forest(k),
                    JobOptions {
                        deadline: Some(Duration::ZERO),
                        ..JobOptions::default()
                    },
                )
                .expect("zero-deadline jobs are accepted, then expire")
        })
        .collect();
    assert_eq!(server.queue_depth(), 4, "queue is nominally full");

    // The fresh submit purges the dead work instead of bouncing off it.
    let live = server
        .try_submit("churn", churn_forest(99))
        .expect("a queue full of expired jobs must not reject live work");

    // The purged jobs were completed as deadline-missed at admission —
    // their handles resolve *before* the worker is even unwedged.
    for handle in dead {
        let done = handle.wait();
        assert!(
            matches!(done.outcome, Err(JobError::DeadlineExceeded { .. })),
            "purged jobs expire, not label"
        );
        assert!(done.latency.is_zero(), "expired jobs are never labeled");
    }

    gate.open();
    assert!(plug.wait().outcome.is_ok());
    assert!(live.wait().outcome.is_ok());

    let report = server.shutdown();
    assert_eq!(report.accepted, 6);
    assert_eq!(report.completed, 2);
    assert_eq!(report.deadline_missed, 4);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(report.completed + report.deadline_missed, report.accepted);
    assert_eq!(
        report.submitted,
        report.accepted + report.rejected + report.shed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// EDF ordering under the wedge: with the worker pinned, jobs with
    /// random distinct deadlines (plus a no-deadline tail) are queued,
    /// and the recorded labeling order must be exactly
    /// deadline-sorted with the no-deadline jobs last in arrival order.
    /// The aggregate EDF-optimality check rides along: serving the same
    /// deadline multiset in EDF order can never miss more unit-time
    /// jobs than arrival order does.
    #[test]
    fn edf_orders_by_deadline_and_never_misses_more_than_fifo(seed in 0u64..1_000_000) {
        const JOBS: u64 = 8;

        // A seed-derived permutation of 1..=JOBS as relative ranks.
        let mut ranks: Vec<u64> = (1..=JOBS).collect();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..ranks.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ranks.swap(i, (s >> 33) as usize % (i + 1));
        }

        // Aggregate optimality on the abstract schedule (unit service
        // time, deadline = rank time units): EDF misses <= FIFO misses.
        let fifo_misses = ranks.iter().enumerate()
            .filter(|(i, r)| (*i as u64 + 1) > **r).count();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let edf_misses = sorted.iter().enumerate()
            .filter(|(i, r)| (*i as u64 + 1) > **r).count();
        prop_assert!(edf_misses <= fifo_misses,
            "EDF missed {edf_misses} > FIFO {fifo_misses} for ranks {ranks:?}");

        // The real scheduler: deadlines far enough out that nothing
        // expires, spaced by rank so the sort order is unambiguous.
        let gate = Arc::new(Gate::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        let server = SelectorServer::new(ServerConfig {
            workers: 1,
            queue_cap: 64,
            sched: SchedPolicy::Edf,
            ..ServerConfig::default()
        });
        server.register_normal("wedge", gated_grammar(Arc::clone(&gate))).unwrap();
        server
            .register_normal("rec", recording_grammar("rec", "rec", Arc::clone(&log)))
            .unwrap();

        let plug = server.try_submit("wedge", plug_forest()).unwrap();
        gate.wait_entered();

        let mut handles = Vec::new();
        for (i, rank) in ranks.iter().enumerate() {
            let handle = server.try_submit_with(
                "rec",
                tagged_forest(i as i64),
                JobOptions {
                    deadline: Some(Duration::from_secs(600 + rank * 60)),
                    ..JobOptions::default()
                },
            ).unwrap();
            handles.push(handle);
        }
        // Two no-deadline stragglers: they must pop last, arrival order.
        for k in [100i64, 101] {
            handles.push(server.try_submit("rec", tagged_forest(k)).unwrap());
        }

        gate.open();
        for handle in handles {
            prop_assert!(handle.wait().outcome.is_ok());
        }
        let _ = plug.wait();

        let order: Vec<i64> = dedup_log(&log.lock().unwrap())
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut want: Vec<i64> = (0..JOBS as usize)
            .map(|i| i as i64)
            .collect();
        want.sort_by_key(|&i| ranks[i as usize]);
        want.extend([100, 101]);
        prop_assert_eq!(order, want, "seed {}: ranks {:?}", seed, ranks);
        server.shutdown();
    }
}

/// Per-target fair queueing bounds a cold target's wait under a
/// hot-target flood: with deficit round-robin (weight 1 each), the
/// cold jobs interleave one-per-round instead of waiting out all
/// twenty hot jobs.
#[test]
fn fair_queueing_bounds_cold_target_wait_under_hot_flood() {
    let gate = Arc::new(Gate::default());
    let log = Arc::new(Mutex::new(Vec::new()));
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        queue_cap: 64,
        fair: Some(FairConfig::default()),
        ..ServerConfig::default()
    });
    server
        .register_normal("wedge", gated_grammar(Arc::clone(&gate)))
        .unwrap();
    server
        .register_normal("hot", recording_grammar("hot", "hot", Arc::clone(&log)))
        .unwrap();
    server
        .register_normal("cold", recording_grammar("cold", "cold", Arc::clone(&log)))
        .unwrap();

    let plug = server.try_submit("wedge", plug_forest()).unwrap();
    gate.wait_entered();

    let mut handles = Vec::new();
    for k in 0..20 {
        handles.push(server.try_submit("hot", tagged_forest(k)).unwrap());
    }
    for k in 0..3 {
        handles.push(server.try_submit("cold", tagged_forest(100 + k)).unwrap());
    }

    gate.open();
    for handle in handles {
        assert!(handle.wait().outcome.is_ok());
    }
    let _ = plug.wait();

    let order = dedup_log(&log.lock().unwrap());
    assert_eq!(order.len(), 23);
    // DRR with equal weights alternates hot/cold while both have work:
    // the i-th cold job (i from 1) pops within the first 2*i jobs —
    // without fair queueing it would sit behind all twenty hot jobs.
    for (i, pos) in order
        .iter()
        .enumerate()
        .filter(|(_, (tag, _))| *tag == "cold")
        .map(|(pos, _)| pos)
        .enumerate()
    {
        let nth = i + 1;
        assert!(
            pos < 2 * nth,
            "cold job #{nth} popped at position {} (order: {order:?})",
            pos + 1
        );
    }
    let report = server.shutdown();
    assert_eq!(report.completed, 24);
}
