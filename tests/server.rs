//! The new failure surface of the long-running [`SelectorServer`]:
//! queue-full backpressure, deadline expiry racing completion, and
//! graceful shutdown with pinned labelings straddling a compaction —
//! every successful labeling cross-checked **bit-identically** (full
//! instruction sequence + total cost) against a fresh [`DpLabeler`]
//! oracle, exactly as `tests/service_fuzz.rs` does for the batch path.
//!
//! The conservation law under test everywhere: every submitted job is
//! either completed, typed-rejected (`QueueFull`), or deadline-expired
//! — never silently lost, including across `shutdown()`.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use odburg::prelude::*;
use odburg::service::{JobError, JobHandle, JobOptions, SelectorServer, ServerConfig, SubmitError};
use odburg::workloads::TreeSampler;

use common::random_grammar;

/// The oracle: a fresh iburg-style dynamic-programming labeler, built
/// from scratch for one forest, reduced to instructions.
fn dp_reduction(forest: &Forest, normal: &Arc<NormalGrammar>) -> Reduction {
    let mut dp = DpLabeler::new(Arc::clone(normal));
    let labeling = dp.label_forest(forest).expect("dp labels sampled trees");
    odburg::codegen::reduce_forest(forest, normal, &labeling).expect("dp reduces")
}

/// A grammar whose dynamic cost depends on the constant's value, so
/// distinct constants keep minting signatures — the compaction churn
/// driver.
fn churn_grammar() -> Arc<NormalGrammar> {
    let mut g = odburg::grammar::parse_grammar(
        r#"
        %grammar churn
        %start stmt
        %dyncost val
        reg: ConstI8 [val]
        reg: AddI8(reg, reg) (1)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .unwrap();
    g.bind_dyncost(
        "val",
        Arc::new(|forest: &Forest, node: odburg::ir::NodeId| {
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            RuleCost::Finite((v.unsigned_abs() % 911) as u16)
        }),
    )
    .unwrap();
    Arc::new(g.normalize())
}

fn churn_forest(k: i64) -> Forest {
    let mut f = Forest::new();
    let root = odburg::ir::parse_sexpr(
        &mut f,
        &format!(
            "(StoreI8 (ConstI8 {k}) (AddI8 (ConstI8 {}) (ConstI8 1)))",
            k + 13
        ),
    )
    .unwrap();
    f.add_root(root);
    f
}

/// Multi-threaded backpressure stress: four submitters flood a tiny
/// queue served by one worker. Every `try_submit` outcome is either an
/// accepted handle (which must resolve with a correct labeling) or a
/// typed `QueueFull` — and the final report's conservation must account
/// for every single attempt.
#[test]
fn queue_full_backpressure_never_loses_a_job() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 200;

    let normal = churn_grammar();
    let server = Arc::new(SelectorServer::new(ServerConfig {
        workers: 1,
        queue_cap: 4,
        ..ServerConfig::default()
    }));
    server
        .register_normal("churn", Arc::clone(&normal))
        .unwrap();

    let accepted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let server = Arc::clone(&server);
            let normal = Arc::clone(&normal);
            let accepted = &accepted;
            let rejected = &rejected;
            let completed = &completed;
            scope.spawn(move || {
                let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
                for i in 0..PER_THREAD {
                    let k = (t * PER_THREAD + i) as i64;
                    let forest = churn_forest(k);
                    match server.try_submit("churn", forest.clone()) {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            handles.push((handle, forest));
                        }
                        Err(SubmitError::QueueFull { capacity }) => {
                            assert_eq!(capacity, 4);
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                // Every accepted job resolves, and resolves *correctly*.
                for (handle, forest) in handles {
                    let done = handle.wait();
                    let got = done.reduce().expect("accepted jobs label");
                    let want = dp_reduction(&forest, &normal);
                    assert_eq!(got.instructions, want.instructions);
                    assert_eq!(got.total_cost, want.total_cost);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let accepted = accepted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let completed = completed.load(Ordering::Relaxed);
    assert_eq!(
        accepted + rejected,
        (SUBMITTERS * PER_THREAD) as u64,
        "every try_submit outcome is typed"
    );
    assert_eq!(completed, accepted, "no accepted job may be lost");
    assert!(
        rejected > 0,
        "a 4-slot queue under 4 flooding submitters must exert backpressure"
    );

    let report = server.shutdown();
    assert_eq!(report.accepted, accepted);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.completed + report.deadline_missed, report.accepted);
    assert_eq!(report.deadline_missed, 0, "no deadlines were set");
    let churn = &report.per_target[0];
    assert_eq!(churn.counters.rejected_submits, rejected);
    assert!(
        churn.counters.maintenance_runs > 0,
        "quanta ran between jobs"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deadline expiry racing completion: jobs with tiny random
    /// deadlines race the worker. Whatever the interleaving, each
    /// outcome is either a bit-identical-to-DP labeling or a typed
    /// `DeadlineExceeded` — and the tallies conserve all of them.
    #[test]
    fn deadline_expiry_races_completion_without_losing_jobs(seed in 0u64..1_000_000) {
        // Derive the racing deadline from the seed: 0..400us spans
        // "always expired" through "usually labeled".
        let deadline_us = seed % 400;
        let normal = Arc::new(random_grammar(seed).normalize());
        let server = SelectorServer::new(ServerConfig {
            workers: 1,
            queue_cap: 64,
            ..ServerConfig::default()
        });
        server.register_normal("race", Arc::clone(&normal)).unwrap();

        let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
        for salt in 0..6u64 {
            let mut sampler = TreeSampler::new(&normal, seed ^ (salt << 8));
            let forest = sampler.sample_forest(4);
            let handle = server
                .try_submit_with(
                    "race",
                    forest.clone(),
                    JobOptions {
                        deadline: Some(Duration::from_micros(deadline_us)),
                        ..JobOptions::default()
                    },
                )
                .expect("a 64-slot queue accepts 6 jobs");
            handles.push((handle, forest));
        }

        let mut labeled = 0u64;
        let mut expired = 0u64;
        for (handle, forest) in handles {
            let done = handle.wait();
            match &done.outcome {
                Ok(_) => {
                    labeled += 1;
                    let got = done.reduce().expect("labeled jobs reduce");
                    let want = dp_reduction(&forest, &normal);
                    prop_assert_eq!(
                        &got.instructions, &want.instructions,
                        "seed {}: racing deadline corrupted a labeling", seed
                    );
                    prop_assert_eq!(got.total_cost, want.total_cost);
                }
                Err(JobError::DeadlineExceeded { .. }) => {
                    expired += 1;
                    prop_assert!(done.latency.is_zero(), "expired jobs are never labeled");
                }
                Err(e @ (JobError::Label(_) | JobError::Panicked { .. })) => {
                    return Err(TestCaseError::fail(format!("sampled trees must label: {e}")));
                }
            }
        }
        let report = server.shutdown();
        prop_assert_eq!(report.accepted, 6);
        prop_assert_eq!(report.completed, labeled);
        prop_assert_eq!(report.deadline_missed, expired);
        prop_assert_eq!(labeled + expired, 6, "conservation across the race");
        let race = &report.per_target[0];
        prop_assert_eq!(race.counters.deadline_misses, expired);
    }
}

/// Graceful shutdown with pinned labelings straddling compactions: a
/// compacting budget churns the target's tables while completed jobs
/// are *held* across epochs and across `shutdown()` itself. Every held
/// pin must keep reducing bit-identically to the oracle no matter how
/// many compactions replaced the tables underneath it.
#[test]
fn shutdown_with_pins_straddling_compaction_is_bit_identical() {
    let normal = churn_grammar();
    let server = SelectorServer::new(ServerConfig {
        workers: 2,
        queue_cap: 512,
        memory_budget: Some(MemoryBudget::compact(10 * 1024, 0.5)),
        ..ServerConfig::default()
    });
    server
        .register_normal("churn", Arc::clone(&normal))
        .unwrap();

    // Enough distinct constants to trip the 10 KiB budget repeatedly.
    let mut held: Vec<(odburg::service::CompletedJob, Reduction)> = Vec::new();
    let mut handles: Vec<(JobHandle, Forest)> = Vec::new();
    for k in 0..160 {
        let forest = churn_forest(k * 7);
        let handle = server
            .try_submit("churn", forest.clone())
            .expect("roomy queue");
        handles.push((handle, forest));
    }
    for (handle, forest) in handles {
        let done = handle.wait();
        let want = dp_reduction(&forest, &normal);
        let got = done.reduce().expect("churn jobs label");
        assert_eq!(got.instructions, want.instructions);
        assert_eq!(got.total_cost, want.total_cost);
        if held.len() < 12 {
            // Keep early pins alive across all later compactions.
            held.push((done, want));
        }
    }

    // The budget must actually have tripped (otherwise this test pins
    // nothing across anything).
    let master = server.shared("churn").unwrap();
    let counters = master.counters();
    assert!(counters.compactions > 0, "churn must compact: {counters}");
    assert!(counters.maintenance_runs > 0);
    assert!(
        master.accounted_bytes().total() <= 10 * 1024,
        "maintenance quanta keep the budget"
    );

    // Shutdown while the pins are still alive…
    let report = server.shutdown();
    assert_eq!(report.completed, 160);
    assert_eq!(report.completed + report.deadline_missed, report.accepted);
    assert!(report.per_target[0].pressure.is_some(), "pressure recorded");

    // …and the pinned labelings still reduce identically afterwards:
    // their snapshots outlive the server, the compactions, everything.
    for (done, want) in &held {
        let again = done.reduce().expect("pins survive shutdown");
        assert_eq!(&again.instructions, &want.instructions);
        assert_eq!(again.total_cost, want.total_cost);
    }
}

/// Governed persistence at the API level: `shutdown()` re-exports each
/// built master's tables into the tables directory, and a fresh server
/// warm-starts from them, answering the seen traffic with zero misses.
#[test]
fn shutdown_reexports_tables_and_heat_survives_restart() {
    let dir = std::env::temp_dir().join("odburg-server-reexport");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let traffic: Vec<Forest> = (0..8).map(|k| churn_forest(k * 3)).collect();

    // First life: cold, learns the traffic, exports at shutdown.
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        tables_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    server.register_normal("churn", churn_grammar()).unwrap();
    let handles: Vec<JobHandle> = traffic
        .iter()
        .map(|f| server.try_submit("churn", f.clone()).unwrap())
        .collect();
    for h in handles {
        assert!(h.wait().outcome.is_ok());
    }
    let report = server.shutdown();
    assert_eq!(report.exported_tables, vec!["churn".to_owned()]);
    assert!(
        report.export_errors.is_empty(),
        "{:?}",
        report.export_errors
    );
    assert!(dir.join("churn.odbt").exists());

    // Second life: warm-starts from the export; the same traffic never
    // enters the grow path.
    let server = SelectorServer::new(ServerConfig {
        workers: 1,
        tables_dir: Some(dir),
        ..ServerConfig::default()
    });
    server.register_normal("churn", churn_grammar()).unwrap();
    let handles: Vec<JobHandle> = traffic
        .iter()
        .map(|f| server.try_submit("churn", f.clone()).unwrap())
        .collect();
    for h in handles {
        assert!(h.wait().outcome.is_ok());
    }
    let report = server.shutdown();
    let churn = &report.per_target[0];
    assert!(churn.warm_started, "second life must be warm");
    assert_eq!(churn.counters.memo_misses, 0, "{}", churn.counters);
    assert_eq!(churn.counters.states_built, 0);
}
