//! End-to-end warm start: a "restarted process" imports persisted tables
//! and labels a previously-seen workload without entering the grow path
//! at all — the acceptance criterion of the persistence subsystem,
//! asserted through `WorkCounters`.

use std::sync::Arc;

use odburg::prelude::*;
use odburg::select::persist;

/// Exports tables from a suite-warmed automaton and re-imports them, as
/// a restart would (through the real binary format).
fn restart_snapshot() -> (Arc<NormalGrammar>, AutomatonSnapshot, Forest) {
    let normal = Arc::new(odburg::targets::x86ish().normalize());
    let suite = odburg::workloads::combined_workload().forest;
    let mut trainer = OnDemandAutomaton::new(Arc::clone(&normal));
    trainer.label_forest(&suite).expect("suite labels");
    let mut bytes = Vec::new();
    persist::export_snapshot(&trainer.snapshot(), &mut bytes).expect("export succeeds");
    let snapshot = persist::import_snapshot(&bytes[..], Arc::clone(&normal), trainer.config())
        .expect("import succeeds");
    (normal, snapshot, suite)
}

#[test]
fn single_threaded_warm_start_enters_grow_path_zero_times() {
    let (normal, snapshot, suite) = restart_snapshot();
    let mut warm = OnDemandAutomaton::from_snapshot(&snapshot);
    let warm_labeling = warm.label_forest(&suite).expect("warm labels");

    let c = warm.counters();
    assert_eq!(c.nodes, suite.len() as u64);
    assert_eq!(c.memo_misses, 0, "no transition may be recomputed");
    assert_eq!(c.states_built, 0, "no state may be rebuilt");
    assert_eq!(c.memo_hits, c.nodes, "every node answers from the tables");

    // And the labeling agrees with a cold automaton's, so the warm path
    // is a pure speedup, not a different answer.
    let mut cold = OnDemandAutomaton::new(normal);
    assert_eq!(
        cold.label_forest(&suite).expect("cold labels"),
        warm_labeling
    );
}

#[test]
fn shared_warm_start_enters_grow_path_zero_times() {
    let (_, snapshot, suite) = restart_snapshot();
    let shared = SharedOnDemand::with_seed_snapshot(Arc::new(snapshot));

    // Label the suite from multiple threads.
    let shared_ref = &shared;
    let suite_ref = &suite;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                shared_ref.label_forest(suite_ref).expect("labels");
            });
        }
    });

    let c = shared.counters();
    assert_eq!(c.memo_misses, 0, "warm readers must never reach the writer");
    assert_eq!(c.states_built, 0);
    assert_eq!(
        shared.snapshots_published(),
        0,
        "the seed snapshot must keep serving; nothing new may be published"
    );
}

#[test]
fn warm_started_automaton_keeps_growing_past_the_tables() {
    let (normal, snapshot, _) = restart_snapshot();
    let states_before = snapshot.stats().states;
    let mut warm = OnDemandAutomaton::from_snapshot(&snapshot);

    // Trees sampled from the grammar itself: guaranteed labelable, with
    // far more shape diversity than the MiniC suite the tables saw.
    let f = odburg::workloads::random_workload(&warm.grammar().clone(), 0xBEEF, 60).forest;
    warm.label_forest(&f).expect("unseen forest labels");
    assert!(warm.counters().memo_misses > 0, "the new shape must miss");
    assert!(warm.stats().states > states_before, "and grow the tables");

    // Growth is seamless: the warm tables plus the new states still
    // pick the same rules as a cold automaton on the new forest. (State
    // *ids* differ — the automata discovered states in different orders
    // — so the comparison is over the selected rules, which is what
    // reduction consumes.)
    let mut cold = OnDemandAutomaton::new(Arc::clone(&normal));
    let cold_labeling = cold.label_forest(&f).expect("cold labels");
    let warm_labeling = warm.label_forest(&f).expect("warm relabels");
    let cold_chooser = cold_labeling.chooser(&cold);
    let warm_chooser = warm_labeling.chooser(&warm);
    for (id, _) in f.iter() {
        for nt in 0..normal.num_nts() {
            let nt = odburg::grammar::NtId(nt as u16);
            assert_eq!(
                cold_chooser.rule_for(id, nt),
                warm_chooser.rule_for(id, nt),
                "node {id} nt {nt:?}"
            );
        }
    }
}

#[test]
fn imported_epoch_survives_the_round_trip() {
    // Flush-mode automata restart epoch numbering on every flush; a
    // restarted process must resume from the exported epoch so pinned
    // labelings taken after import can never collide with it.
    let normal = Arc::new(odburg::targets::x86ish().normalize());
    let mut auto = OnDemandAutomaton::with_config(
        Arc::clone(&normal),
        OnDemandConfig {
            budget_policy: BudgetPolicy::Flush,
            ..OnDemandConfig::default()
        },
    );
    auto.clear(); // epoch 1
    auto.clear(); // epoch 2
    let suite = odburg::workloads::combined_workload().forest;
    auto.label_forest(&suite).expect("labels");

    let mut bytes = Vec::new();
    persist::export_snapshot(&auto.snapshot(), &mut bytes).expect("export succeeds");
    let snapshot =
        persist::import_snapshot(&bytes[..], normal, auto.config()).expect("import succeeds");
    assert_eq!(snapshot.epoch(), 2);

    let shared = SharedOnDemand::with_seed_snapshot(Arc::new(snapshot));
    assert_eq!(shared.snapshot().epoch(), 2);
    let pinned = shared.label_forest_pinned(&suite).expect("labels");
    assert_eq!(pinned.snapshot().epoch(), 2, "no spurious epoch change");
}
