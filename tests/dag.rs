//! DAG instruction selection: tree grammars over hash-consed IR
//! (the Ertl-1999 extension the paper's system family supports).

use std::sync::Arc;

use odburg::frontend::programs;
use odburg::ir::cse_forest;
use odburg::prelude::*;

#[test]
fn dag_labeling_matches_tree_labeling_costs() {
    // Labeling a CSE'd forest must assign every shared node the same
    // state a tree labeler would, so per-root optimal costs agree.
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    for program in programs::all() {
        let tree = program.compile().unwrap();
        let dag = cse_forest(&tree);
        assert!(dag.len() <= tree.len());

        let mut dp = DpLabeler::new(normal.clone());
        let tree_labeling = dp.label_forest(&tree).unwrap();
        let dag_labeling = dp.label_forest(&dag).unwrap();
        for (t_root, d_root) in tree.roots().iter().zip(dag.roots()) {
            assert_eq!(
                tree_labeling.cost_of(*t_root, normal.start()),
                dag_labeling.cost_of(*d_root, normal.start()),
                "{}: root cost differs between tree and DAG",
                program.name
            );
        }
    }
}

#[test]
fn dag_reduction_emits_shared_subtrees_once() {
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    // Two statements recomputing the same expensive product.
    let mut forest = Forest::new();
    let r1 = parse_sexpr(
        &mut forest,
        "(StoreI8 (AddrLocalP @a) (MulI8 (LoadI8 (AddrLocalP @x)) (LoadI8 (AddrLocalP @y))))",
    )
    .unwrap();
    let r2 = parse_sexpr(
        &mut forest,
        "(StoreI8 (AddrLocalP @b) (MulI8 (LoadI8 (AddrLocalP @x)) (LoadI8 (AddrLocalP @y))))",
    )
    .unwrap();
    forest.add_root(r1);
    forest.add_root(r2);
    let dag = cse_forest(&forest);
    assert!(dag.len() < forest.len());

    let mut od = OnDemandAutomaton::new(normal.clone());
    let tree_labeling = od.label_forest(&forest).unwrap();
    let tree_chooser = tree_labeling.chooser(&od);
    let tree_red = odburg::codegen::reduce_forest(&forest, &normal, &tree_chooser).unwrap();

    let dag_labeling = od.label_forest(&dag).unwrap();
    let dag_chooser = dag_labeling.chooser(&od);
    let dag_red = odburg::codegen::reduce_forest(&dag, &normal, &dag_chooser).unwrap();

    assert!(
        dag_red.len() < tree_red.len(),
        "sharing must save instructions: {} vs {}",
        dag_red.len(),
        tree_red.len()
    );
    assert!(dag_red.total_cost < tree_red.total_cost);
    // The shared product must appear exactly once.
    let muls = |r: &odburg::codegen::Reduction| {
        r.instructions
            .iter()
            .filter(|i| i.starts_with("imul"))
            .count()
    };
    assert_eq!(muls(&tree_red), 2);
    assert_eq!(muls(&dag_red), 1);
}

#[test]
fn rmw_dynamic_cost_sees_shared_address_identity() {
    // On a DAG the RMW address check is plain node identity — the fast
    // path the paper family mentions for DAG matchers.
    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());
    let mut forest = Forest::new();
    let root = parse_sexpr(
        &mut forest,
        "(StoreI8 (AddrLocalP @x) (AddI8 (LoadI8 (AddrLocalP @x)) (ConstI8 1)))",
    )
    .unwrap();
    forest.add_root(root);
    let dag = cse_forest(&forest);

    let mut od = OnDemandAutomaton::new(normal.clone());
    let labeling = od.label_forest(&dag).unwrap();
    let chooser = labeling.chooser(&od);
    let red = odburg::codegen::reduce_forest(&dag, &normal, &chooser).unwrap();
    assert!(
        red.instructions.iter().any(|i| i.starts_with("addq")),
        "RMW must fire on the shared-address DAG: {:?}",
        red.instructions
    );
}

#[test]
fn service_labels_shared_dag_nodes_once_and_agrees_with_trees() {
    use odburg::service::{SelectorService, ServiceConfig};

    let grammar = odburg::targets::x86ish();
    let normal = Arc::new(grammar.normalize());

    // Two statements recomputing the same expensive product; CSE shares
    // the product subtree.
    let mut tree = Forest::new();
    for local in ["@a", "@b"] {
        let root = parse_sexpr(
            &mut tree,
            &format!(
                "(StoreI8 (AddrLocalP {local}) \
                 (MulI8 (LoadI8 (AddrLocalP @x)) (LoadI8 (AddrLocalP @y))))"
            ),
        )
        .unwrap();
        tree.add_root(root);
    }
    let dag = cse_forest(&tree);
    assert!(dag.len() < tree.len(), "CSE must share something");

    let svc = SelectorService::with_builtin_targets(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    svc.submit("x86ish", dag.clone()).unwrap();
    let report = svc.drain();
    assert_eq!(report.failed(), 0);
    assert_eq!(report.per_target[0].nodes, dag.len() as u64);

    // Shared nodes are labeled exactly once: a second submission of the
    // DAG is answered with exactly one memo hit per DAG node — not one
    // per tree occurrence — and no misses.
    svc.submit("x86ish", dag.clone()).unwrap();
    let warm = svc.drain();
    let stats = &warm.per_target[0];
    assert_eq!(
        stats.counters.nodes,
        dag.len() as u64,
        "{:?}",
        stats.counters
    );
    assert_eq!(
        stats.counters.memo_hits,
        dag.len() as u64,
        "{:?}",
        stats.counters
    );
    assert_eq!(stats.counters.memo_misses, 0, "{:?}", stats.counters);

    // The service's DAG reduction is bit-identical (instructions and
    // cost) to a fresh DP-oracle reduction of the same DAG…
    let service_red = report.results[0].reduce().unwrap();
    let mut dp = DpLabeler::new(normal.clone());
    let dp_labeling = dp.label_forest(&dag).unwrap();
    let oracle_red = odburg::codegen::reduce_forest(&dag, &normal, &dp_labeling).unwrap();
    assert_eq!(service_red.instructions, oracle_red.instructions);
    assert_eq!(service_red.total_cost, oracle_red.total_cost);

    // …and per-root optimal costs agree with the un-shared tree forest
    // (sharing changes emission, never the selected derivations' costs).
    let tree_labeling = dp.label_forest(&tree).unwrap();
    for (t_root, d_root) in tree.roots().iter().zip(dag.roots()) {
        assert_eq!(
            tree_labeling.cost_of(*t_root, normal.start()),
            dp_labeling.cost_of(*d_root, normal.start()),
        );
    }
    // The shared product is emitted exactly once through the service.
    let muls = service_red
        .instructions
        .iter()
        .filter(|i| i.starts_with("imul"))
        .count();
    assert_eq!(muls, 1, "{:?}", service_red.instructions);
}

#[test]
fn whole_suite_compiles_as_dags() {
    let grammar = odburg::targets::riscish();
    let normal = Arc::new(grammar.normalize());
    let mut od = OnDemandAutomaton::new(normal.clone());
    for program in programs::all() {
        let dag = cse_forest(&program.compile().unwrap());
        let labeling = od.label_forest(&dag).unwrap();
        let chooser = labeling.chooser(&od);
        let red = odburg::codegen::reduce_forest(&dag, &normal, &chooser)
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        assert!(!red.is_empty());
    }
}
