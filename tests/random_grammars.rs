//! Property-based testing over *randomly generated grammars*: the
//! equivalence of all optimal selectors must hold for any well-formed
//! tree grammar, not just the shipped machine descriptions.

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use odburg::prelude::*;
use odburg::workloads::TreeSampler;

use common::{random_grammar, total_cost};

#[test]
fn non_burs_finite_grammar_defeats_offline_but_not_ondemand() {
    // A grammar whose two register classes drift apart in cost with tree
    // depth (no chain rule connects them): the set of cost-normalized
    // states is infinite, so offline generation cannot terminate — while
    // the on-demand automaton only ever builds the states its actual
    // workload needs. This is the situation the paper family's footnote
    // on termination describes.
    let grammar = parse_grammar(
        r#"
        %start s
        a: ConstI8 (0)
        a: LoadI8(a) (1)
        b: ConstI8 (0)
        b: LoadI8(b) (2)
        s: StoreI8(a, b) (1)
        "#,
    )
    .unwrap();
    let normal = Arc::new(grammar.normalize());
    let result = OfflineAutomaton::build(
        normal.clone(),
        OfflineConfig {
            state_budget: 1000,
            ..OfflineConfig::default()
        },
    );
    assert!(
        matches!(result, Err(LabelError::StateBudgetExceeded { .. })),
        "offline construction must diverge: {result:?}"
    );

    // The on-demand automaton handles any concrete workload fine, with
    // states proportional to the deepest chain actually seen.
    let mut od = OnDemandAutomaton::new(normal.clone());
    let mut forest = Forest::new();
    let src = "(StoreI8 (LoadI8 (LoadI8 (ConstI8 0))) (LoadI8 (ConstI8 1)))";
    let root = parse_sexpr(&mut forest, src).unwrap();
    forest.add_root(root);
    let labeling = od.label_forest(&forest).unwrap();
    let chooser = labeling.chooser(&od);
    let red = odburg::codegen::reduce_forest(&forest, &normal, &chooser).unwrap();
    assert_eq!(red.total_cost, Cost::finite(5)); // 2×load(a) + load(b)×1@2 + store
    assert!(od.stats().states <= 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn selectors_agree_on_random_grammars(seed in 0u64..100_000) {
        let grammar = random_grammar(seed);
        let normal = Arc::new(grammar.normalize());
        let mut sampler = TreeSampler::new(&normal, seed ^ 0xDEAD);
        let forest = sampler.sample_forest(25);

        let mut dp = DpLabeler::new(normal.clone());
        let dp_labeling = dp.label_forest(&forest).expect("dp labels");
        let dp_cost = total_cost(&forest, &normal, &dp_labeling);

        let mut od = OnDemandAutomaton::new(normal.clone());
        let od_labeling = od.label_forest(&forest).expect("od labels");
        let od_chooser = od_labeling.chooser(&od);
        let od_cost = total_cost(&forest, &normal, &od_chooser);
        prop_assert_eq!(dp_cost, od_cost, "grammar seed {}", seed);

        let mut odp = OnDemandAutomaton::with_config(
            normal.clone(),
            OnDemandConfig { project_children: true, ..OnDemandConfig::default() },
        );
        let odp_labeling = odp.label_forest(&forest).expect("projected od labels");
        let odp_chooser = odp_labeling.chooser(&odp);
        prop_assert_eq!(dp_cost, total_cost(&forest, &normal, &odp_chooser));

        // Offline agrees with DP on the stripped grammar — whenever its
        // construction terminates. Random grammars may lack the chain
        // rules that bound relative costs (the classic non-BURS-finite
        // situation the paper's footnote describes); the offline builder
        // then hits its state budget while the on-demand automaton — the
        // whole point — kept working above.
        let stripped = Arc::new(normal.strip_dynamic().expect("leaf fallbacks exist"));
        let config = OfflineConfig {
            state_budget: 4_000,
            ..OfflineConfig::default()
        };
        match OfflineAutomaton::build(stripped.clone(), config) {
            Ok(offline) => {
                let offline = Arc::new(offline);
                let mut off = OfflineLabeler::new(offline.clone());
                let off_labeling = off.label_forest(&forest).expect("offline labels");
                let off_chooser = off_labeling.chooser(&*offline);
                let off_cost = total_cost(&forest, &stripped, &off_chooser);
                let mut dps = DpLabeler::new(stripped.clone());
                let dps_labeling = dps.label_forest(&forest).expect("stripped dp labels");
                prop_assert_eq!(off_cost, total_cost(&forest, &stripped, &dps_labeling));
                prop_assert!(off_cost >= dp_cost);
            }
            Err(LabelError::StateBudgetExceeded { .. }) => {
                // Non-BURS-finite grammar: offline generation diverges,
                // on-demand selection already succeeded above. That *is*
                // one of the paper's selling points.
            }
            Err(other) => prop_assert!(false, "unexpected offline error: {other}"),
        }
    }

    #[test]
    fn state_invariants_hold_on_random_grammars(seed in 0u64..100_000) {
        // Every state the automaton builds is normalized (minimum finite
        // delta is zero) and never dead for nodes that labeled fine.
        let grammar = random_grammar(seed);
        let normal = Arc::new(grammar.normalize());
        let mut sampler = TreeSampler::new(&normal, seed ^ 0xBEEF);
        let forest = sampler.sample_forest(15);
        let mut od = OnDemandAutomaton::new(normal.clone());
        let labeling = od.label_forest(&forest).expect("labels");
        for (id, _) in forest.iter() {
            let data = od.state(labeling.state_of(id));
            prop_assert!(!data.is_dead());
            let min = (0..normal.num_nts())
                .map(|i| data.cost(odburg::grammar::NtId(i as u16)))
                .filter(|c| c.is_finite())
                .min()
                .expect("live state has a finite cost");
            prop_assert_eq!(min, Cost::ZERO, "state not normalized");
        }
    }

    #[test]
    fn grammar_display_reparses_equivalently(seed in 0u64..100_000) {
        // Printing a grammar in DSL syntax and reparsing it yields a
        // grammar with identical structure (costs, rule classes, sizes).
        let grammar = random_grammar(seed);
        let text = grammar.to_string();
        let reparsed = parse_grammar(&text)
            .unwrap_or_else(|e| panic!("reparse failed for:\n{text}\n{e}"));
        let a = grammar.stats();
        let b = reparsed.stats();
        prop_assert_eq!(a.rules, b.rules);
        prop_assert_eq!(a.chain_rules, b.chain_rules);
        prop_assert_eq!(a.dynamic_rules, b.dynamic_rules);
        prop_assert_eq!(a.normal_rules, b.normal_rules);
        prop_assert_eq!(a.operators, b.operators);
    }
}
