//! Memory-governor integration tests: compaction must be invisible to
//! selection quality. Labelings taken before, across and after
//! compaction epochs — including pinned labelings that straddle a
//! compaction — must reduce to instruction sequences bit-identical to a
//! fresh `DpLabeler` oracle, while the accounted table bytes stay under
//! the budget.

use std::sync::Arc;

use odburg::prelude::*;
use odburg::service::{SelectorService, ServiceConfig};

/// A grammar where every distinct constant mints a distinct signature
/// *and* a distinct normalized state (the imm/reg spread is the value),
/// so churny traffic grows all table components without bound.
fn churn_grammar() -> Arc<NormalGrammar> {
    let mut g = parse_grammar(
        r#"
        %grammar govchurn
        %start stmt
        %dyncost val
        imm: ConstI8 (0)
        reg: ConstI8 [val]
        reg: AddI8(reg, imm) (1)
        reg: AddI8(reg, reg) (1)
        stmt: StoreI8(reg, reg) (1)
        "#,
    )
    .unwrap();
    g.bind_dyncost(
        "val",
        Arc::new(|forest: &Forest, node| {
            let v = forest.node(node).payload().as_int().unwrap_or(0);
            RuleCost::Finite((v.unsigned_abs() % 257) as u16)
        }),
    )
    .unwrap();
    Arc::new(g.normalize())
}

fn churn_forest(k: u64) -> Forest {
    let mut f = Forest::new();
    let root = parse_sexpr(
        &mut f,
        &format!(
            "(StoreI8 (AddI8 (ConstI8 {k}) (ConstI8 {})) (AddI8 (ConstI8 {}) (ConstI8 {k})))",
            k + 1,
            k % 4, // a hot leaf in every forest
        ),
    )
    .unwrap();
    f.add_root(root);
    f
}

fn oracle_reduction(normal: &Arc<NormalGrammar>, forest: &Forest) -> Reduction {
    let mut dp = DpLabeler::new(Arc::clone(normal));
    let labeling = dp.label_forest(forest).unwrap();
    reduce_forest(forest, normal, &labeling).unwrap()
}

#[test]
fn compaction_epoch_labelings_are_bit_identical_to_dp() {
    let normal = churn_grammar();
    let byte_budget = 10 * 1024;
    let auto = OnDemandAutomaton::with_config(
        Arc::clone(&normal),
        OnDemandConfig {
            budget_policy: BudgetPolicy::Compact {
                byte_budget,
                retain_fraction: 0.5,
            },
            ..OnDemandConfig::default()
        },
    );
    let shared = SharedOnDemand::new(auto);

    // Pins taken along the way, each with the oracle's answer at the
    // time; they must still resolve identically after later compactions.
    let mut straddlers: Vec<(Forest, PinnedLabeling, Reduction)> = Vec::new();
    for k in 0..120 {
        let forest = churn_forest(k * 10);
        let pinned = shared.label_forest_pinned(&forest).unwrap();
        let expected = oracle_reduction(&normal, &forest);

        // Bit-identical now: full instruction sequence and total cost.
        let got = reduce_forest(&forest, pinned.snapshot().grammar(), &pinned.chooser()).unwrap();
        assert_eq!(got.instructions, expected.instructions, "forest {k}");
        assert_eq!(got.total_cost, expected.total_cost, "forest {k}");

        // The writer-side compaction keeps the accounted bytes bounded
        // at every observation point.
        assert!(
            shared.accounted_bytes().total() <= byte_budget,
            "bytes exceeded the budget after forest {k}"
        );
        // Pin only in the first half, so every pin has compactions
        // happening after it (the second half's churn guarantees that).
        if k % 17 == 0 && k < 60 {
            straddlers.push((forest, pinned, expected));
        }
    }
    let counters = shared.counters();
    assert!(
        counters.compactions > 0,
        "the churn must actually compact: {counters}"
    );
    assert!(counters.states_evicted > 0);

    // Every straddling pin still reduces bit-identically against its
    // own (retired) epoch's tables, however many compactions happened
    // since it was taken.
    for (i, (forest, pinned, expected)) in straddlers.iter().enumerate() {
        let got = reduce_forest(forest, pinned.snapshot().grammar(), &pinned.chooser()).unwrap();
        assert_eq!(got.instructions, expected.instructions, "straddler {i}");
        assert_eq!(got.total_cost, expected.total_cost, "straddler {i}");
        assert!(
            pinned.snapshot().epoch() < shared.snapshot().epoch(),
            "straddler {i} must actually span a compaction epoch"
        );
    }
}

#[test]
fn single_threaded_compact_policy_is_bit_identical_to_dp() {
    let normal = churn_grammar();
    let byte_budget = 8 * 1024;
    let mut auto = OnDemandAutomaton::with_config(
        Arc::clone(&normal),
        OnDemandConfig {
            budget_policy: BudgetPolicy::Compact {
                byte_budget,
                retain_fraction: 0.5,
            },
            ..OnDemandConfig::default()
        },
    );
    for k in 0..150 {
        let forest = churn_forest(k * 7);
        let labeling = auto.label_forest(&forest).unwrap();
        let got = reduce_forest(&forest, &normal, &labeling.chooser(&auto)).unwrap();
        let expected = oracle_reduction(&normal, &forest);
        assert_eq!(got.instructions, expected.instructions, "forest {k}");
        assert_eq!(got.total_cost, expected.total_cost, "forest {k}");
        assert!(
            auto.accounted_bytes().total() <= byte_budget,
            "bytes exceeded the budget after forest {k}"
        );
    }
    assert!(auto.stats().compactions > 0, "the churn must compact");
}

#[test]
fn service_budget_enforcement_is_bit_identical_to_dp() {
    // Both pressure actions, through the whole service stack: every job
    // of every batch — batches before, at and after enforcement — must
    // reduce exactly like the oracle.
    let normal = churn_grammar();
    for budget in [
        MemoryBudget::compact(10 * 1024, 0.5),
        MemoryBudget::flush(10 * 1024),
    ] {
        let svc = SelectorService::new(ServiceConfig {
            workers: 2,
            memory_budget: Some(budget),
            ..ServiceConfig::default()
        });
        svc.register_normal("churn", Arc::clone(&normal)).unwrap();
        let mut held: Vec<(odburg::service::JobResult, Reduction)> = Vec::new();
        let mut pressured = false;
        for round in 0..30 {
            for i in 0..8u64 {
                svc.submit("churn", churn_forest(round * 80 + i * 9))
                    .unwrap();
            }
            let report = svc.drain();
            assert_eq!(report.failed(), 0, "round {round}");
            let t = &report.per_target[0];
            pressured |= t.pressure.is_some();
            assert!(t.table_bytes <= 10 * 1024, "round {round}");
            for job in report.results {
                let expected = oracle_reduction(&normal, &job.forest);
                let got = job.reduce().unwrap();
                assert_eq!(got.instructions, expected.instructions);
                assert_eq!(got.total_cost, expected.total_cost);
                if held.len() < 6 {
                    held.push((job, expected));
                }
            }
        }
        assert!(pressured, "{budget:?} never tripped");
        // Early jobs, pinned to long-retired epochs, still agree.
        for (job, expected) in &held {
            let got = job.reduce().unwrap();
            assert_eq!(got.instructions, expected.instructions);
            assert_eq!(got.total_cost, expected.total_cost);
        }
    }
}
