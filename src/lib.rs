//! Workspace-level integration surface for **odburg**, the on-demand
//! tree-parsing-automaton instruction selector.
//!
//! This crate intentionally contains no code: it exists to host the
//! cross-crate integration tests under `tests/` and the end-to-end
//! examples under `examples/`, which exercise the public API of the
//! [`odburg`] facade crate exactly as an external user would. See the
//! workspace `README.md` for the architecture overview.
